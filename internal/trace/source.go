// Streaming trace sources: the chunk-iterator API that lets paper-scale
// runs (hundreds of millions of dynamic instructions) flow through the
// trace→TDG→eval pipeline without ever materializing the whole []DynInst
// array. A Source hands out bounded Chunks one at a time; generator-backed
// sources recycle chunk buffers through a sync.Pool once the consumer
// releases them, so steady-state memory is O(chunks in flight), not
// O(trace).
package trace

import (
	"sync"
	"sync/atomic"

	"exocore/internal/prog"
)

const (
	// DefaultChunkInsts is the default dynamic instructions per chunk:
	// 1Mi instructions = 16 MiB of DynInst per buffer, large enough that
	// per-chunk overheads vanish and small enough that a handful of
	// in-flight buffers stay far inside the paper-scale memory budget.
	DefaultChunkInsts = 1 << 20
	// MinChunkInsts is the smallest chunk size the CLI accepts: below
	// the evaluation engine's compaction stride, per-chunk overhead
	// (annotator calls, channel handoffs) starts to show in profiles.
	// Library callers (tests) may still construct smaller chunks to
	// exercise boundary handling.
	MinChunkInsts = 4096
	// MaxChunkInsts bounds the CLI flag at 256Mi instructions (4 GiB of
	// buffer): past this a "chunked" run is just the materialized path
	// with extra steps.
	MaxChunkInsts = 1 << 28
)

// Chunk is a bounded run of consecutive dynamic instructions from one
// trace. Base is the dynamic index of Insts[0] in the whole trace, so
// consumers that key state by dynamic index (the µDG streaming window)
// can stay chunk-agnostic.
type Chunk struct {
	Base  int
	Insts []DynInst

	release func(*Chunk)
}

// Release returns the chunk's buffer to its source's pool. The chunk and
// its Insts must not be touched afterwards. Calling Release on a chunk
// without an owning pool (eg. a SliceSource view) is a no-op; releasing
// is an optimization, never an obligation — unreleased buffers are
// reclaimed by the garbage collector.
func (c *Chunk) Release() {
	if c.release != nil {
		rel := c.release
		c.release = nil
		rel(c)
	}
}

// Source is a forward-only iterator over a dynamic trace in bounded
// chunks. Next returns the next chunk and true, or (nil, false) once the
// trace is exhausted or the source has failed; Err distinguishes the two.
// A returned chunk remains valid until its Release call — sources must
// not recycle a buffer the consumer still holds, which is what lets a
// producer goroutine run ahead of the consumer (see Pipelined).
//
// Sources are single-consumer and not safe for concurrent Next calls.
// They are forward-only: replaying a trace means constructing a fresh
// source, which generator-backed implementations make cheap and
// deterministic (same workload, same seed, same bytes).
type Source interface {
	// Prog returns the static program the dynamic stream executes.
	Prog() *prog.Program
	// Next returns the next chunk, or (nil, false) at end of stream.
	Next() (*Chunk, bool)
	// Err returns the first failure encountered while synthesizing the
	// stream, or nil. Next returns false after a failure.
	Err() error
}

// ChunkPool hands out fixed-capacity chunk buffers and tracks the
// high-water mark of buffers simultaneously outstanding — the streaming
// pipeline's actual resident trace memory, exported as the
// trace.chunk_high_water_bytes gauge by the evaluation layers.
type ChunkPool struct {
	chunkInsts  int
	pool        sync.Pool
	outstanding atomic.Int64
	highWater   atomic.Int64
}

// NewChunkPool creates a pool of n-instruction chunk buffers (n <= 0
// selects DefaultChunkInsts).
func NewChunkPool(n int) *ChunkPool {
	if n <= 0 {
		n = DefaultChunkInsts
	}
	p := &ChunkPool{chunkInsts: n}
	p.pool.New = func() any {
		return &Chunk{Insts: make([]DynInst, 0, n)}
	}
	return p
}

// ChunkInsts returns the pool's per-chunk instruction capacity.
func (p *ChunkPool) ChunkInsts() int { return p.chunkInsts }

// Get returns an empty chunk with the pool's full capacity available.
// The chunk returns to the pool on Release.
func (p *ChunkPool) Get() *Chunk {
	c := p.pool.Get().(*Chunk)
	c.Insts = c.Insts[:0]
	c.Base = 0
	c.release = p.put
	n := p.outstanding.Add(1)
	for {
		hw := p.highWater.Load()
		if n <= hw || p.highWater.CompareAndSwap(hw, n) {
			break
		}
	}
	return c
}

func (p *ChunkPool) put(c *Chunk) {
	p.outstanding.Add(-1)
	p.pool.Put(c)
}

// HighWaterBytes returns the peak bytes of chunk buffers simultaneously
// outstanding (checked out and not yet released).
func (p *ChunkPool) HighWaterBytes() int64 {
	const instBytes = 16 // unsafe.Sizeof(DynInst{}), kept packed by design
	return p.highWater.Load() * int64(p.chunkInsts) * instBytes
}

// ChunkAccounting is implemented by sources that can report their peak
// resident chunk-buffer footprint. Pipeline wrappers forward it.
type ChunkAccounting interface {
	ChunkHighWaterBytes() int64
}

// SliceSource adapts a materialized Trace to the Source interface,
// yielding zero-copy views of the backing array — the compatibility
// bridge that lets every consumer be written against Source while the
// whole-trace path keeps working unchanged.
type SliceSource struct {
	t          *Trace
	chunkInsts int
	pos        int
}

// NewSliceSource returns a Source over t's instructions in chunks of
// chunkInsts (<= 0 selects DefaultChunkInsts). The yielded chunks alias
// t.Insts; Release is a no-op.
func NewSliceSource(t *Trace, chunkInsts int) *SliceSource {
	if chunkInsts <= 0 {
		chunkInsts = DefaultChunkInsts
	}
	return &SliceSource{t: t, chunkInsts: chunkInsts}
}

// Prog implements Source.
func (s *SliceSource) Prog() *prog.Program { return s.t.Prog }

// Err implements Source; slice sources cannot fail.
func (s *SliceSource) Err() error { return nil }

// Next implements Source. The returned chunk is a zero-copy view into
// the trace. Each call allocates a fresh (tiny) Chunk header rather than
// reusing one, honoring the valid-until-Release contract a pipelining
// wrapper depends on.
func (s *SliceSource) Next() (*Chunk, bool) {
	if s.pos >= len(s.t.Insts) {
		return nil, false
	}
	end := s.pos + s.chunkInsts
	if end > len(s.t.Insts) {
		end = len(s.t.Insts)
	}
	c := &Chunk{Base: s.pos, Insts: s.t.Insts[s.pos:end]}
	s.pos = end
	return c, true
}

// Materialize drains a source into a whole Trace — the adapter for
// consumers that genuinely need random access (BSA transforms, region
// attribution). hint pre-sizes the instruction array (0 = unknown).
func Materialize(src Source, hint int) (*Trace, error) {
	if hint < 0 {
		hint = 0
	}
	out := &Trace{Prog: src.Prog(), Insts: make([]DynInst, 0, hint)}
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		out.Insts = append(out.Insts, c.Insts...)
		c.Release()
	}
	return out, src.Err()
}

// Tee returns a Source that forwards src unchanged while calling feed on
// every chunk before handing it to the consumer — how the streaming TDG
// builder observes the stream the evaluation is consuming without a
// second synthesis pass.
func Tee(src Source, feed func(*Chunk)) Source {
	return &teeSource{src: src, feed: feed}
}

type teeSource struct {
	src  Source
	feed func(*Chunk)
}

func (t *teeSource) Prog() *prog.Program { return t.src.Prog() }
func (t *teeSource) Err() error          { return t.src.Err() }

func (t *teeSource) Next() (*Chunk, bool) {
	c, ok := t.src.Next()
	if ok {
		t.feed(c)
	}
	return c, ok
}

// ChunkHighWaterBytes forwards the inner source's accounting.
func (t *teeSource) ChunkHighWaterBytes() int64 {
	if acc, ok := t.src.(ChunkAccounting); ok {
		return acc.ChunkHighWaterBytes()
	}
	return 0
}

// Pipelined runs an inner source on a producer goroutine, sending chunks
// to the consumer over a bounded channel — chunk synthesis (functional
// simulation + cache/branch-predictor annotation) overlaps with µDG
// evaluation instead of alternating with it. depth bounds the chunks
// buffered ahead of the consumer, so resident trace memory stays at
// (depth + in-flight) chunks.
type Pipelined struct {
	src  Source
	ch   chan *Chunk
	stop chan struct{}
	done chan struct{} // closed when the producer goroutine exits

	stopOnce sync.Once
	errMu    sync.Mutex
	err      error
}

// DefaultPipelineDepth is the default producer lookahead, in chunks.
const DefaultPipelineDepth = 2

// NewPipelined starts a producer goroutine over src and returns the
// consumer-side source. depth <= 0 selects DefaultPipelineDepth. The
// consumer must either drain the source or call Stop; both shut the
// producer down and release any buffered chunks.
func NewPipelined(src Source, depth int) *Pipelined {
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}
	p := &Pipelined{
		src:  src,
		ch:   make(chan *Chunk, depth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go p.produce()
	return p
}

func (p *Pipelined) produce() {
	defer close(p.done)
	defer close(p.ch)
	for {
		c, ok := p.src.Next()
		if !ok {
			p.errMu.Lock()
			p.err = p.src.Err()
			p.errMu.Unlock()
			return
		}
		select {
		case p.ch <- c:
		case <-p.stop:
			c.Release()
			return
		}
	}
}

// Prog implements Source.
func (p *Pipelined) Prog() *prog.Program { return p.src.Prog() }

// Next implements Source, receiving the producer's next chunk.
func (p *Pipelined) Next() (*Chunk, bool) {
	c, ok := <-p.ch
	return c, ok
}

// Err implements Source. Valid once Next has returned false (the
// producer records the inner source's error before closing the channel).
func (p *Pipelined) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// Stop shuts the producer down early (a consumer abandoning the stream
// mid-way) and releases all buffered chunks. Safe to call multiple times
// and safe after normal exhaustion; blocks until the producer goroutine
// has exited.
func (p *Pipelined) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
	for c := range p.ch {
		c.Release()
	}
}

// ChunkHighWaterBytes forwards the inner source's accounting.
func (p *Pipelined) ChunkHighWaterBytes() int64 {
	if acc, ok := p.src.(ChunkAccounting); ok {
		return acc.ChunkHighWaterBytes()
	}
	return 0
}
