package trace

import (
	"reflect"
	"testing"
)

// bigTrace synthesizes a trace long enough to span many chunks, reusing
// the sample program's five static instructions.
func bigTrace(n int) *Trace {
	t := sampleTrace()
	insts := make([]DynInst, n)
	for i := range insts {
		src := t.Insts[i%len(t.Insts)]
		src.Addr = uint64(0x100 + 8*i)
		insts[i] = src
	}
	return &Trace{Prog: t.Prog, Insts: insts}
}

func drain(t *testing.T, src Source) []DynInst {
	t.Helper()
	var out []DynInst
	prevEnd := 0
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		if c.Base != prevEnd {
			t.Fatalf("chunk base %d, want %d (chunks must be adjacent)", c.Base, prevEnd)
		}
		if len(c.Insts) == 0 {
			t.Fatal("empty chunk yielded")
		}
		out = append(out, c.Insts...)
		prevEnd = c.Base + len(c.Insts)
		c.Release()
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSliceSourceChunking(t *testing.T) {
	tr := bigTrace(10_007) // prime-ish: last chunk is partial
	for _, chunk := range []int{1, 7, 256, 10_006, 10_007, 1 << 20} {
		got := drain(t, NewSliceSource(tr, chunk))
		if !reflect.DeepEqual(got, tr.Insts) {
			t.Fatalf("chunk %d: drained stream differs from trace", chunk)
		}
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	tr := bigTrace(5000)
	got, err := Materialize(NewSliceSource(tr, 777), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Prog != tr.Prog || !reflect.DeepEqual(got.Insts, tr.Insts) {
		t.Fatal("materialized trace differs")
	}
}

func TestChunkPoolHighWater(t *testing.T) {
	p := NewChunkPool(1024)
	a, b := p.Get(), p.Get()
	if want := int64(2 * 1024 * 16); p.HighWaterBytes() != want {
		t.Fatalf("high water %d, want %d", p.HighWaterBytes(), want)
	}
	a.Release()
	b.Release()
	c := p.Get()
	defer c.Release()
	if want := int64(2 * 1024 * 16); p.HighWaterBytes() != want {
		t.Fatalf("high water shrank to %d, want sticky %d", p.HighWaterBytes(), want)
	}
	// Double release must not double-count.
	a.Release()
}

func TestTeeObservesEveryChunk(t *testing.T) {
	tr := bigTrace(3000)
	var seen []DynInst
	src := Tee(NewSliceSource(tr, 512), func(c *Chunk) {
		seen = append(seen, c.Insts...)
	})
	got := drain(t, src)
	if !reflect.DeepEqual(got, tr.Insts) || !reflect.DeepEqual(seen, tr.Insts) {
		t.Fatal("tee consumer or observer stream differs from trace")
	}
}

func TestPipelinedMatchesDirect(t *testing.T) {
	tr := bigTrace(20_000)
	for _, depth := range []int{1, 2, 8} {
		got := drain(t, NewPipelined(NewSliceSource(tr, 997), depth))
		if !reflect.DeepEqual(got, tr.Insts) {
			t.Fatalf("depth %d: pipelined stream differs from trace", depth)
		}
	}
}

func TestPipelinedStop(t *testing.T) {
	tr := bigTrace(50_000)
	p := NewPipelined(NewSliceSource(tr, 100), 4)
	if _, ok := p.Next(); !ok {
		t.Fatal("no first chunk")
	}
	p.Stop()
	p.Stop() // idempotent
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsMergeMatchesWholeScan is the differential gate for the
// per-chunk statistics accumulator: partitioning a trace at arbitrary
// boundaries and merging the per-chunk Stats must reproduce the
// whole-scan ComputeStats exactly, including the FP/memory class split.
func TestStatsMergeMatchesWholeScan(t *testing.T) {
	tr := bigTrace(12_345)
	whole := tr.ComputeStats()
	for _, chunk := range []int{1, 3, 100, 4096, 12_344} {
		var merged Stats
		src := NewSliceSource(tr, chunk)
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			var part Stats
			part.Accumulate(tr.Prog, c.Insts)
			merged.Merge(part)
		}
		if merged != whole {
			t.Fatalf("chunk %d: merged stats %+v != whole-scan %+v", chunk, merged, whole)
		}
	}
}
