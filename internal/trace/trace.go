// Package trace defines the dynamic-instruction trace that the functional
// simulator produces and every microarchitectural model consumes. This is
// the substrate of the TDG: a µDG is the trace plus dependence edges, and
// graph transforms rewrite windows of it.
package trace

import (
	"sync"

	"exocore/internal/isa"
	"exocore/internal/prog"
)

// Flag bits for DynInst.Flags.
const (
	// FlagTaken marks a taken control transfer.
	FlagTaken uint8 = 1 << iota
	// FlagMispred marks a branch the predictor got wrong.
	FlagMispred
	// FlagSpill marks a load/store identified as a register spill by the
	// best-effort spill analysis (paper §2.7); transforms may bypass it.
	FlagSpill
)

// MemLevel identifies which level of the hierarchy served an access.
type MemLevel uint8

// Memory hierarchy levels.
const (
	LevelNone MemLevel = iota
	LevelL1
	LevelL2
	LevelMem
)

// String implements fmt.Stringer.
func (l MemLevel) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "mem"
	}
	return "-"
}

// DynInst is one dynamic instruction: a static-instruction reference plus
// the dynamic information the µDG embeds (memory address and latency,
// branch outcome and prediction). It is kept small: traces run to hundreds
// of thousands of entries and are retained for reuse across design points.
// DynInst is one dynamic instruction. Field order is chosen to pack the
// struct into 16 bytes (Addr first avoids 4 bytes of alignment padding
// after SI) — every evaluation path streams the Insts array, so a third
// less footprint is a third less memory bandwidth on the hottest scans.
type DynInst struct {
	Addr   uint64   // effective address for memory ops
	SI     int32    // static instruction index into the program
	MemLat uint16   // cycles to serve a memory access (cache model)
	Level  MemLevel // hierarchy level that served the access
	Flags  uint8
}

// Taken reports whether the dynamic branch/jump was taken.
func (d *DynInst) Taken() bool { return d.Flags&FlagTaken != 0 }

// Mispredicted reports whether the branch predictor missed.
func (d *DynInst) Mispredicted() bool { return d.Flags&FlagMispred != 0 }

// IsSpill reports whether the access was classified as a register spill.
func (d *DynInst) IsSpill() bool { return d.Flags&FlagSpill != 0 }

// Trace is a dynamic execution of one program.
type Trace struct {
	Prog  *prog.Program
	Insts []DynInst

	statsOnce sync.Once
	stats     Stats
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Insts) }

// Static returns the static instruction for the i'th dynamic instruction.
func (t *Trace) Static(i int) *isa.Inst { return &t.Prog.Insts[t.Insts[i].SI] }

// StaticOf returns the static instruction for a dynamic instruction.
func (t *Trace) StaticOf(d *DynInst) *isa.Inst { return &t.Prog.Insts[d.SI] }

// Stats summarizes a trace for reports and sanity tests. Every field is
// an additive tally over instructions, so per-chunk Stats merge with a
// plain field-wise sum (Merge) — what lets the streaming pipeline keep
// statistics without a whole-trace scan.
type Stats struct {
	Dyn          int
	Loads        int
	Stores       int
	Branches     int
	Taken        int
	Mispredicted int
	L1Hits       int
	L2Hits       int
	MemAccesses  int
	FpOps        int
}

// Merge adds o's tallies into s. Merging the per-chunk Stats of a
// partitioned trace, in any order, equals the whole-scan Stats.
func (s *Stats) Merge(o Stats) {
	s.Dyn += o.Dyn
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Branches += o.Branches
	s.Taken += o.Taken
	s.Mispredicted += o.Mispredicted
	s.L1Hits += o.L1Hits
	s.L2Hits += o.L2Hits
	s.MemAccesses += o.MemAccesses
	s.FpOps += o.FpOps
}

// Accumulate tallies insts (dynamic instructions of p) into s. Both the
// whole-trace scan and the per-chunk streaming accumulator go through
// this one loop, so the two paths cannot drift.
//
// FpOps counts FP *compute* only: an op that is both FP-typed and a
// memory access (an FP load/store, should the ISA grow one) tallies as a
// load/store, not an FpOp — each instruction lands in exactly one
// class-count, which is what makes the per-chunk merge equal the
// whole-scan without double counting.
func (s *Stats) Accumulate(p *prog.Program, insts []DynInst) {
	s.Dyn += len(insts)
	for i := range insts {
		d := &insts[i]
		op := p.Insts[d.SI].Op
		switch {
		case op.IsLoad():
			s.Loads++
		case op.IsStore():
			s.Stores++
		case op.IsBranch():
			s.Branches++
			if d.Taken() {
				s.Taken++
			}
			if d.Mispredicted() {
				s.Mispredicted++
			}
		case op.IsFp():
			s.FpOps++
		}
		switch d.Level {
		case LevelL1:
			s.L1Hits++
		case LevelL2:
			s.L2Hits++
		case LevelMem:
			s.MemAccesses++
		}
	}
}

// ComputeStats tallies Stats, scanning the trace on the first call and
// serving the memoized result afterwards. Traces are immutable once
// built and shared across goroutines, so the memoization is guarded by
// a sync.Once.
func (t *Trace) ComputeStats() Stats {
	t.statsOnce.Do(func() { t.stats = t.computeStats() })
	return t.stats
}

func (t *Trace) computeStats() Stats {
	var s Stats
	s.Accumulate(t.Prog, t.Insts)
	return s
}
