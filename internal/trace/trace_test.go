package trace

import (
	"testing"

	"exocore/internal/isa"
	"exocore/internal/prog"
)

func sampleTrace() *Trace {
	b := prog.NewBuilder("t")
	b.Ld(isa.R(1), isa.R(2), 0)
	b.FAdd(isa.F(1), isa.F(1), isa.F(2))
	b.St(isa.R(1), isa.R(2), 8)
	b.Bne(isa.R(1), isa.RZ, "t2")
	b.Label("t2")
	b.Nop()
	p := b.MustBuild()
	return &Trace{Prog: p, Insts: []DynInst{
		{SI: 0, Addr: 0x100, MemLat: 4, Level: LevelL1},
		{SI: 1},
		{SI: 2, Addr: 0x108, MemLat: 22, Level: LevelL2},
		{SI: 3, Flags: FlagTaken | FlagMispred},
		{SI: 4},
	}}
}

func TestFlags(t *testing.T) {
	tr := sampleTrace()
	br := &tr.Insts[3]
	if !br.Taken() || !br.Mispredicted() || br.IsSpill() {
		t.Error("flag accessors wrong")
	}
	ld := &tr.Insts[0]
	if ld.Taken() || ld.Mispredicted() {
		t.Error("load has control flags")
	}
}

func TestStaticAccessors(t *testing.T) {
	tr := sampleTrace()
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Static(0).Op != isa.Ld || tr.StaticOf(&tr.Insts[2]).Op != isa.St {
		t.Error("static lookup wrong")
	}
}

func TestComputeStats(t *testing.T) {
	s := sampleTrace().ComputeStats()
	if s.Dyn != 5 || s.Loads != 1 || s.Stores != 1 || s.Branches != 1 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.Taken != 1 || s.Mispredicted != 1 {
		t.Errorf("branch stats wrong: %+v", s)
	}
	if s.L1Hits != 1 || s.L2Hits != 1 || s.MemAccesses != 0 {
		t.Errorf("memory stats wrong: %+v", s)
	}
	if s.FpOps != 1 {
		t.Errorf("fp ops = %d", s.FpOps)
	}
}

func TestMemLevelStrings(t *testing.T) {
	for _, l := range []MemLevel{LevelNone, LevelL1, LevelL2, LevelMem} {
		if l.String() == "" {
			t.Errorf("level %d has no name", l)
		}
	}
}
