// Package validate reproduces the paper's §2.5 validation experiments
// (Table 1 and Figure 5):
//
//   - OOO cross-validation: the µDG graph model against the independent
//     cycle-level reference simulator (refsim), at 1-wide and 8-wide
//     design points, on performance (IPC) and energy efficiency (IPE);
//   - per-accelerator validation: the framework's projected speedup and
//     energy reduction for C-Cores, BERET, SIMD and DySER design points
//     against reference values digitized from the original publications
//     (approximate — see EXPERIMENTS.md for the fidelity discussion).
package validate

import (
	"fmt"
	"sort"

	"exocore/internal/bsa"
	"exocore/internal/bsa/ccores"
	"exocore/internal/bsa/tracep"
	"exocore/internal/cores"
	"exocore/internal/energy"
	"exocore/internal/exocore"
	"exocore/internal/refsim"
	"exocore/internal/runner"
	"exocore/internal/stats"
	"exocore/internal/tdg"
	"exocore/internal/trace"
	"exocore/internal/workloads"
)

// OOO1 and OOO8 are the extreme design points of the cross-validation.
var (
	OOO1 = cores.Config{
		Name: "OOO1", Width: 1, ROB: 32, Window: 16, DCachePorts: 1,
		IntAlu: 1, IntMulDiv: 1, FpUnits: 1, FrontendDepth: 8, AreaMM2: 1.8,
	}
	OOO8 = cores.Config{
		Name: "OOO8", Width: 8, ROB: 224, Window: 64, DCachePorts: 4,
		IntAlu: 5, IntMulDiv: 2, FpUnits: 4, FrontendDepth: 14, AreaMM2: 16.0,
	}
)

// Row is one benchmark's reference-vs-projected pair.
type Row struct {
	Bench     string
	Reference float64
	Projected float64
}

// Err returns the relative error of the row.
func (r Row) Err() float64 {
	if r.Reference == 0 {
		return 0
	}
	e := (r.Projected - r.Reference) / r.Reference
	if e < 0 {
		return -e
	}
	return e
}

// Report is one validation experiment (one Table 1 line).
type Report struct {
	Accel  string
	Base   string
	Perf   []Row
	Energy []Row
}

func errOf(rows []Row) float64 {
	var got, want []float64
	for _, r := range rows {
		got = append(got, r.Projected)
		want = append(want, r.Reference)
	}
	return stats.MeanAbsErr(got, want)
}

// PerfErr is the mean absolute relative performance error.
func (r *Report) PerfErr() float64 { return errOf(r.Perf) }

// EnergyErr is the mean absolute relative energy error.
func (r *Report) EnergyErr() float64 { return errOf(r.Energy) }

// Ranges returns (perfLo, perfHi, energyLo, energyHi) of reference values.
func (r *Report) Ranges() (float64, float64, float64, float64) {
	var p, e []float64
	for _, row := range r.Perf {
		p = append(p, row.Reference)
	}
	for _, row := range r.Energy {
		e = append(e, row.Reference)
	}
	pl, ph := stats.MinMax(p)
	el, eh := stats.MinMax(e)
	return pl, ph, el, eh
}

// crossBenches are the microbenchmark proxies for the paper's "vertical
// microbenchmarks" [2] used in the OOO cross-validation.
var crossBenches = []string{
	"mm", "stencil", "conv", "mcf", "gzip", "treesearch", "radar",
	"spmv", "kmeans", "merge", "vpr", "hmmer", "sad", "lbm", "tpch1",
}

// refEnergyNJ is the reference-side energy estimate: built independently
// of the µDG event stream, including the wrong-path fetch/decode work
// after mispredictions that the graph model does not capture.
func refEnergyNJ(cfg cores.Config, tr *trace.Trace, cycles int64) float64 {
	var c energy.Counts
	for i := 0; i < tr.Len(); i++ {
		in := tr.Static(i)
		d := &tr.Insts[i]
		c.Add(energy.EvFetch, 1)
		c.Add(energy.EvDecode, 1)
		c.Add(energy.EvCommit, 1)
		if !cfg.InOrder {
			c.Add(energy.EvRename, 1)
			c.Add(energy.EvIssueWakeup, 1)
			c.Add(energy.EvROB, 1)
		}
		if in.Src1.Valid() {
			c.Add(energy.EvRegRead, 1)
		}
		if in.Src2.Valid() {
			c.Add(energy.EvRegRead, 1)
		}
		if in.HasDst() {
			c.Add(energy.EvRegWrite, 1)
		}
		switch {
		case in.Op.IsMem():
			c.Add(energy.EvLSQ, 1)
			c.Add(energy.EvL1Access, 1)
			if d.Level >= trace.LevelL2 {
				c.Add(energy.EvL2Access, 1)
			}
			if d.Level >= trace.LevelMem {
				c.Add(energy.EvMemAccess, 1)
			}
		case in.Op.IsBranch():
			c.Add(energy.EvBpred, 1)
			c.Add(energy.EvIntAluOp, 1)
			if d.Mispredicted() {
				// Wrong-path work: roughly half the refill window of
				// fetch/decode at full width is wasted.
				waste := int64(cfg.Width * cfg.FrontendDepth / 2)
				c.Add(energy.EvFetch, waste)
				c.Add(energy.EvDecode, waste)
			}
		case in.Op.IsFp():
			c.Add(energy.EvFpAddOp, 1)
		default:
			c.Add(energy.EvIntAluOp, 1)
		}
	}
	tbl := energy.CoreTable(cfg.EnergyParams())
	return tbl.Evaluate(&c, cycles).TotalNJ()
}

// CrossValidate runs the OOO1/OOO8 cross-validation and returns two
// reports ("OOO8→1" and "OOO1→8" in Table 1's terms: the graph model
// projecting each extreme, judged against the independent reference).
func CrossValidate(maxDyn int) ([]Report, error) {
	return CrossValidateWith(runner.New(runner.Options{MaxDyn: maxDyn}))
}

// CrossValidateWith is CrossValidate on a shared evaluation engine, so
// each benchmark's trace is built once and reused across both extreme
// design points (and by ValidateBSAWith on the same engine).
func CrossValidateWith(eng *runner.Engine) ([]Report, error) {
	var reports []Report
	for _, cfg := range []cores.Config{OOO1, OOO8} {
		rep := Report{Accel: "OOO-" + cfg.Name, Base: "-"}
		for _, name := range crossBenches {
			w, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			tr, err := eng.Trace(w)
			if err != nil {
				return nil, err
			}
			refCycles := refsim.Simulate(cfg, tr)
			dgCycles, counts := cores.Evaluate(cfg, tr)
			refIPC := float64(tr.Len()) / float64(refCycles)
			dgIPC := float64(tr.Len()) / float64(dgCycles)
			rep.Perf = append(rep.Perf, Row{Bench: name, Reference: refIPC, Projected: dgIPC})

			tbl := energy.CoreTable(cfg.EnergyParams())
			dgE := tbl.Evaluate(&counts, dgCycles).TotalNJ()
			refE := refEnergyNJ(cfg, tr, refCycles)
			// IPE: uops per microjoule.
			rep.Energy = append(rep.Energy, Row{
				Bench:     name,
				Reference: float64(tr.Len()) / refE,
				Projected: float64(tr.Len()) / dgE,
			})
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// published holds the digitized reference results per accelerator: map
// bench -> (speedup over base, energy relative to base). Values are
// approximate readings of the original publications' results (Figure 5's
// x-axes); see EXPERIMENTS.md.
var published = map[string]map[string][2]float64{
	// C-Cores (Venkatesh et al. [53]): speedups 0.84–1.2×, energy
	// 0.5–0.9× of the in-order host.
	"C-Cores": {
		"cjpeg2": {1.07, 0.72}, "djpeg2": {1.05, 0.74},
		"vpr": {1.14, 0.70}, "mcf429": {0.93, 0.88},
		"bzip2": {0.95, 0.80}, "bzip2-401": {0.95, 0.80},
	},
	// BERET (Gupta et al. [18]): speedups 0.82–1.17×, energy 0.46–0.99×.
	"BERET": {
		"mcf": {0.90, 0.70}, "mcf429": {0.90, 0.70},
		"gzip": {1.06, 0.90}, "vpr": {0.94, 0.92},
		"parser": {0.84, 0.80}, "bzip2": {0.88, 0.82},
		"cjpeg2": {1.04, 0.68}, "gsmdecode": {1.12, 0.58},
		"gsmencode": {1.08, 0.60},
	},
	// SIMD (gem5-measured in the paper): speedups 1.0–3.6×.
	"SIMD": {
		"conv": {3.50, 0.33}, "radar": {1.80, 0.55}, "mm": {2.55, 0.41},
		"stencil": {3.25, 0.36}, "lbm": {2.05, 0.47}, "nnw": {2.40, 0.44},
		"sad": {3.00, 0.38}, "fft": {1.15, 0.98}, "kmeans": {1.30, 0.74},
		"tpch1": {2.55, 0.58},
	},
	// DySER (Govindaraju et al. [17]): speedups 0.8–5.8×.
	"DySER": {
		"conv": {3.80, 0.30}, "nbody": {3.80, 0.31}, "radar": {1.90, 0.53},
		"cutcp": {3.60, 0.32}, "kmeans": {1.10, 0.78}, "lbm": {3.60, 0.31},
		"mm": {2.15, 0.48}, "spmv": {3.05, 0.46}, "stencil": {2.90, 0.39},
		"vr": {3.30, 0.35},
	},
}

// bsaSetup maps a validation line to its model constructor and base core.
var bsaSetup = map[string]struct {
	base  cores.Config
	model func() tdg.BSA
}{
	"C-Cores": {cores.IO2, func() tdg.BSA { return ccores.New() }},
	"BERET":   {cores.IO2, func() tdg.BSA { return tracep.NewBERET() }},
	"SIMD":    {cores.OOO4, registryModel("SIMD")},
	"DySER":   {cores.OOO4, registryModel("DP-CGRA")},
}

// registryModel resolves a default-parameter model through the shared
// BSA registry, so validation exercises the exact constructors every
// tool uses; published-accelerator proxies with non-default parameters
// (C-Cores, BERET) keep their direct constructors.
func registryModel(name string) func() tdg.BSA {
	return func() tdg.BSA {
		m, err := bsa.Default().NewOne(name)
		if err != nil {
			panic(err)
		}
		return m
	}
}

// ValidateBSA measures projected speedup and energy reduction for one
// accelerator over its validation benchmarks and pairs them with the
// published references.
func ValidateBSA(accel string, maxDyn int) (Report, error) {
	return ValidateBSAWith(runner.New(runner.Options{MaxDyn: maxDyn}), accel)
}

// ValidateBSAWith is ValidateBSA on a shared evaluation engine: the
// trace and TDG of benchmarks shared between accelerator lines (vpr,
// mcf429, cjpeg2, ...) are reconstructed once instead of per line.
func ValidateBSAWith(eng *runner.Engine, accel string) (Report, error) {
	setup, ok := bsaSetup[accel]
	if !ok {
		return Report{}, fmt.Errorf("validate: unknown accelerator %q", accel)
	}
	pub := published[accel]
	var benches []string
	for b := range pub {
		benches = append(benches, b)
	}
	sort.Strings(benches)

	rep := Report{Accel: accel, Base: setup.base.Name}
	for _, bench := range benches {
		w, err := workloads.ByName(bench)
		if err != nil {
			return Report{}, err
		}
		td, err := eng.TDG(w)
		if err != nil {
			return Report{}, err
		}
		model := setup.model()
		bsas := map[string]tdg.BSA{model.Name(): model}
		plans := map[string]*tdg.Plan{model.Name(): model.Analyze(td)}

		base, err := exocore.Run(td, setup.base, bsas, plans, nil, exocore.RunOpts{})
		if err != nil {
			return Report{}, err
		}
		assign := exocore.Assignment{}
		// Assign every planned region; outermost-wins resolves nesting.
		for l := range plans[model.Name()].Regions {
			assign[l] = model.Name()
		}
		acc, err := exocore.Run(td, setup.base, bsas, plans, assign, exocore.RunOpts{})
		if err != nil {
			return Report{}, err
		}
		baseE := exocore.EnergyOf(base, setup.base, bsas).TotalNJ()
		accE := exocore.EnergyOf(acc, setup.base, bsas).TotalNJ()

		rep.Perf = append(rep.Perf, Row{
			Bench:     bench,
			Reference: pub[bench][0],
			Projected: float64(base.Cycles) / float64(acc.Cycles),
		})
		rep.Energy = append(rep.Energy, Row{
			Bench:     bench,
			Reference: pub[bench][1],
			Projected: accE / baseE,
		})
	}
	return rep, nil
}

// Table1 runs the full validation suite (the paper's Table 1).
func Table1(maxDyn int) ([]Report, error) {
	return Table1With(runner.New(runner.Options{MaxDyn: maxDyn}))
}

// Table1With runs the full validation suite on a shared evaluation
// engine; the six experiment lines reuse each other's cached traces and
// TDGs, and the accelerator lines run over the engine's worker pool.
func Table1With(eng *runner.Engine) ([]Report, error) {
	reports, err := CrossValidateWith(eng)
	if err != nil {
		return nil, err
	}
	accels := []string{"C-Cores", "BERET", "SIMD", "DySER"}
	accelReps, err := runner.Map(eng, len(accels), func(i int) (Report, error) {
		return ValidateBSAWith(eng, accels[i])
	})
	if err != nil {
		return nil, err
	}
	return append(reports, accelReps...), nil
}
