package validate

import (
	"testing"
)

func TestCrossValidationWithinBand(t *testing.T) {
	reps, err := CrossValidate(20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("want 2 cross-validation reports, got %d", len(reps))
	}
	for _, r := range reps {
		if r.PerfErr() > 0.05 {
			t.Errorf("%s: perf error %.1f%% exceeds the paper's ~4%% band",
				r.Accel, 100*r.PerfErr())
		}
		if r.EnergyErr() > 0.05 {
			t.Errorf("%s: energy error %.1f%% exceeds band", r.Accel, 100*r.EnergyErr())
		}
		if len(r.Perf) < 10 {
			t.Errorf("%s: only %d benchmarks", r.Accel, len(r.Perf))
		}
	}
}

func TestBSAValidationWithinBand(t *testing.T) {
	// The paper's Table 1 reports ≤15% mean error per accelerator; allow
	// modest headroom for trace-length sensitivity.
	for _, accel := range []string{"C-Cores", "BERET", "SIMD", "DySER"} {
		rep, err := ValidateBSA(accel, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if rep.PerfErr() > 0.20 {
			t.Errorf("%s: perf error %.1f%% > 20%%", accel, 100*rep.PerfErr())
		}
		if rep.EnergyErr() > 0.20 {
			t.Errorf("%s: energy error %.1f%% > 20%%", accel, 100*rep.EnergyErr())
		}
	}
}

func TestValidationRangesMatchPublications(t *testing.T) {
	rep, err := ValidateBSA("DySER", 15000)
	if err != nil {
		t.Fatal(err)
	}
	pl, ph, el, eh := rep.Ranges()
	if pl < 0.8 || ph > 5.8 {
		t.Errorf("DySER reference range %.2f-%.2f outside published 0.8-5.8", pl, ph)
	}
	if el < 0.25 || eh > 1.28 {
		t.Errorf("DySER energy range %.2f-%.2f outside published", el, eh)
	}
}

func TestProjectionsStayInPlausibleBands(t *testing.T) {
	// No projected speedup should exceed the most optimistic published
	// result for its accelerator class.
	limits := map[string]float64{"C-Cores": 1.6, "BERET": 1.5, "SIMD": 4.4, "DySER": 6.5}
	for accel, lim := range limits {
		rep, err := ValidateBSA(accel, 15000)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rep.Perf {
			if row.Projected > lim {
				t.Errorf("%s on %s: projected %.2fx exceeds plausible %.1fx",
					accel, row.Bench, row.Projected, lim)
			}
			if row.Projected < 0.3 {
				t.Errorf("%s on %s: projected %.2fx implausibly low", accel, row.Bench, row.Projected)
			}
		}
	}
}

func TestUnknownAccelerator(t *testing.T) {
	if _, err := ValidateBSA("NPU", 1000); err == nil {
		t.Error("unknown accelerator accepted")
	}
}

func TestRowErr(t *testing.T) {
	if e := (Row{Reference: 2, Projected: 1}).Err(); e != 0.5 {
		t.Errorf("Err = %v, want 0.5", e)
	}
	if e := (Row{Reference: 2, Projected: 3}).Err(); e != 0.5 {
		t.Errorf("Err = %v, want 0.5", e)
	}
	if e := (Row{Reference: 0, Projected: 3}).Err(); e != 0 {
		t.Errorf("Err with zero reference = %v, want 0", e)
	}
}
