// Graph-analytics workload family: CSR traversals over synthetic
// power-law graphs, standing in for the GAP-style suites the paper's
// behavior taxonomy does not cover. The kernels are built around the
// behaviors that defeat the paper's four BSAs — dependent-load chains
// through index arrays (A[B[i]] gathers, up to three levels deep in
// tricount) and data-dependent branches with no bias — which is exactly
// the profile a decoupled gather-scatter engine (GS-DAE) targets.
package workloads

import (
	"math"

	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
)

// graphN is the vertex count of the synthetic graphs. The per-vertex
// value arrays (8 B/vertex) are then 2× the 64 KiB L1D, so random
// gathers miss L1 routinely and there is real memory latency for a
// decoupled access stream to hide.
const graphN = 16384

// csr is a compressed-sparse-row graph: the column indices of vertex
// u's out-edges are col[rowptr[u]:rowptr[u+1]].
type csr struct {
	rowptr []int64
	col    []int64
}

// powerLawCSR builds a deterministic synthetic graph with Pareto
// (α≈2) out-degree skew — a few hub vertices with hundreds of edges
// and a heavy tail of degree-1 vertices — and uniformly random
// neighbors, so neighbor gathers have no spatial locality. Same seed,
// same graph, byte for byte.
func powerLawCSR(n int, seed uint64) *csr {
	r := newRng(seed)
	g := &csr{rowptr: make([]int64, n+1)}
	for u := 0; u < n; u++ {
		d := int(2.0 / math.Sqrt(1-r.f64()*0.9999))
		if d > 256 {
			d = 256
		}
		for k := 0; k < d; k++ {
			g.col = append(g.col, r.i64(int64(n)))
		}
		g.rowptr[u+1] = int64(len(g.col))
	}
	return g
}

// storeCSR writes rowptr to baseA and col to baseB.
func storeCSR(st *sim.State, g *csr) {
	for i, v := range g.rowptr {
		st.Mem.StoreInt(baseA+uint64(i)*8, v)
	}
	for i, v := range g.col {
		st.Mem.StoreInt(baseB+uint64(i)*8, v)
	}
}

// bfs: frontier-based breadth-first search over a work queue. Each
// dequeued vertex u chases rowptr[u] → col[e] → visited[col[e]], a
// two-level dependent-load chain per edge, and the visited test is a
// data-dependent branch that converges to ~always-taken only as the
// frontier saturates — the worst case for the paper's
// control-criticality behaviors.
var _ = register(&Workload{
	Name: "bfs", Suite: "GAP", Category: Graph,
	Build: func() (*prog.Program, func(*sim.State)) {
		g := powerLawCSR(graphN, 0xb5f5)
		b := prog.NewBuilder("bfs")
		head, tail, u, v := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		e, eEnd, t, mark := isa.R(5), isa.R(6), isa.R(7), isa.R(8)
		b.Label("frontier")
		b.ShlI(t, head, 3)
		b.AddI(t, t, baseD)
		b.Ld(u, t, 0) // u = queue[head]
		b.AddI(head, head, 1)
		b.ShlI(t, u, 3)
		b.AddI(t, t, baseA)
		b.Ld(e, t, 0)    // e    = rowptr[u]   (gather)
		b.Ld(eEnd, t, 8) // eEnd = rowptr[u+1] (gather)
		b.Beq(e, eEnd, "drained")
		b.Label("edges")
		b.ShlI(t, e, 3)
		b.AddI(t, t, baseB)
		b.Ld(v, t, 0) // v = col[e]
		b.ShlI(t, v, 3)
		b.AddI(t, t, baseC)
		b.Ld(mark, t, 0)            // visited[v]: A[B[e]] chain
		b.Bne(mark, isa.RZ, "seen") // data-dependent, unbiased early on
		b.St(tail, t, 0)            // visited[v] = nonzero (tail ≥ 1)
		b.ShlI(t, tail, 3)
		b.AddI(t, t, baseD)
		b.St(v, t, 0) // queue[tail] = v
		b.AddI(tail, tail, 1)
		b.Label("seen")
		b.AddI(e, e, 1)
		b.Blt(e, eEnd, "edges")
		b.Label("drained")
		b.Blt(head, tail, "frontier")
		return b.MustBuild(), func(st *sim.State) {
			storeCSR(st, g)
			st.SetInt(head, 0)
			st.SetInt(tail, 1)
			st.Mem.StoreInt(baseD, 0) // queue[0] = source vertex 0
			st.Mem.StoreInt(baseC, 1) // visited[0]
		}
	},
})

// pagerank: edge-centric rank accumulation (one SpMV sweep). The inner
// loop is a pure gather-reduce — col[e] feeds contrib[col[e]] feeds a
// float accumulator — with perfectly predictable control, so it
// isolates the gather behavior from bfs's branch noise.
var _ = register(&Workload{
	Name: "pagerank", Suite: "GAP", Category: Graph,
	Build: func() (*prog.Program, func(*sim.State)) {
		g := powerLawCSR(graphN, 0x9a6e)
		b := prog.NewBuilder("pagerank")
		u, v, e, eEnd, t, rN := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(10)
		sum, c, damp, bias := isa.F(1), isa.F(2), isa.F(3), isa.F(4)
		b.MovI(u, 0)
		b.MovI(e, 0) // rowptr[0]
		b.Label("vertices")
		b.ShlI(t, u, 3)
		b.AddI(t, t, baseA)
		b.Ld(eEnd, t, 8) // rowptr[u+1]
		b.FMovI(sum, 0)
		b.Beq(e, eEnd, "sink")
		b.Label("edges")
		b.ShlI(t, e, 3)
		b.AddI(t, t, baseB)
		b.Ld(v, t, 0) // v = col[e]
		b.ShlI(t, v, 3)
		b.AddI(t, t, baseC)
		b.LdF(c, t, 0) // contrib[v]: A[B[e]] chain
		b.FAdd(sum, sum, c)
		b.AddI(e, e, 1)
		b.Blt(e, eEnd, "edges")
		b.Label("sink")
		b.FMul(sum, sum, damp)
		b.FAdd(sum, sum, bias)
		b.ShlI(t, u, 3)
		b.AddI(t, t, baseE)
		b.StF(sum, t, 0) // newrank[u]
		b.AddI(u, u, 1)
		b.Blt(u, rN, "vertices")
		return b.MustBuild(), func(st *sim.State) {
			storeCSR(st, g)
			st.SetInt(rN, graphN)
			st.SetFp(damp, 0.85)
			st.SetFp(bias, 0.15/graphN)
			// contrib[v] = rank[v]/deg[v] from a uniform starting rank.
			for v := 0; v < graphN; v++ {
				deg := g.rowptr[v+1] - g.rowptr[v]
				if deg == 0 {
					deg = 1
				}
				st.Mem.StoreFloat(baseC+uint64(v)*8, 1.0/float64(graphN)/float64(deg))
			}
		}
	},
})

// tricount: triangle counting by hashed neighborhood intersection. For
// every vertex u the first pass scatters a mark to each neighbor; the
// second pass chases col[e] → rowptr[col[e]] → col[e2] → mark[col[e2]],
// a three-level dependent-load chain, and the membership test branch is
// decided by random graph structure — near-zero bias, so the GPP and
// Trace-P both pay the misprediction tax on every edge pair.
var _ = register(&Workload{
	Name: "tricount", Suite: "GAP", Category: Graph,
	Build: func() (*prog.Program, func(*sim.State)) {
		g := powerLawCSR(graphN, 0x7c37)
		b := prog.NewBuilder("tricount")
		u, v, w, e, eEnd := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
		e2, e2End, t, t2, mark := isa.R(6), isa.R(7), isa.R(8), isa.R(9), isa.R(11)
		count, uu, rN := isa.R(12), isa.R(13), isa.R(10)
		b.MovI(u, 0)
		b.MovI(count, 0)
		b.Label("vertices")
		b.ShlI(t, u, 3)
		b.AddI(t, t, baseA)
		b.Ld(e, t, 0)
		b.Ld(eEnd, t, 8)
		b.AddI(uu, u, 1) // mark value: u+1 (0 means unmarked)
		b.Beq(e, eEnd, "next")
		// Pass 1: scatter marks to u's neighborhood.
		b.Mov(t2, e)
		b.Label("marks")
		b.ShlI(t, t2, 3)
		b.AddI(t, t, baseB)
		b.Ld(v, t, 0) // v = col[e]
		b.ShlI(t, v, 3)
		b.AddI(t, t, baseE)
		b.St(uu, t, 0) // mark[v] = u+1 (scatter through index)
		b.AddI(t2, t2, 1)
		b.Blt(t2, eEnd, "marks")
		// Pass 2: for each neighbor v, count marked second neighbors.
		b.Label("edges")
		b.ShlI(t, e, 3)
		b.AddI(t, t, baseB)
		b.Ld(v, t, 0) // v = col[e]
		b.ShlI(t, v, 3)
		b.AddI(t, t, baseA)
		b.Ld(e2, t, 0)    // rowptr[v]:   second-level gather
		b.Ld(e2End, t, 8) // rowptr[v+1]
		b.Beq(e2, e2End, "vdone")
		b.Label("wedges")
		b.ShlI(t, e2, 3)
		b.AddI(t, t, baseB)
		b.Ld(w, t, 0) // w = col[e2]: third-level chase
		b.ShlI(t, w, 3)
		b.AddI(t, t, baseE)
		b.Ld(mark, t, 0)         // mark[w]
		b.Bne(mark, uu, "notri") // unbiased membership test
		b.AddI(count, count, 1)
		b.Label("notri")
		b.AddI(e2, e2, 1)
		b.Blt(e2, e2End, "wedges")
		b.Label("vdone")
		b.AddI(e, e, 1)
		b.Blt(e, eEnd, "edges")
		b.Label("next")
		b.AddI(u, u, 1)
		b.Blt(u, rN, "vertices")
		b.ShlI(t, isa.RZ, 0)
		b.AddI(t, t, baseD)
		b.St(count, t, 0)
		return b.MustBuild(), func(st *sim.State) {
			storeCSR(st, g)
			st.SetInt(rN, graphN)
		}
	},
})

// bfs is the graph family's streaming exemplar: frontier-driven CSR
// traversal whose pointer-chasing addresses exercise chunked cache state.
var _ = exemplar("bfs")
