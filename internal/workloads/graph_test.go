package workloads

import "testing"

var graphNames = []string{"bfs", "pagerank", "tricount"}

func TestGraphFamilyRegistered(t *testing.T) {
	got := ByCategory(Graph)
	if len(got) != len(graphNames) {
		t.Fatalf("ByCategory(Graph) = %d workloads, want %d", len(got), len(graphNames))
	}
	for i, name := range graphNames {
		if got[i].Name != name {
			t.Errorf("graph workload %d = %q, want %q", i, got[i].Name, name)
		}
		if got[i].Suite != "GAP" {
			t.Errorf("%s: suite %q, want GAP", name, got[i].Suite)
		}
	}
}

// TestGraphTraceDeterminism pins the property every cache key and golden
// depends on: the synthetic graph is derived only from the compiled-in
// seed, so the same budget yields the identical dynamic instruction
// stream — annotations included — on every run.
func TestGraphTraceDeterminism(t *testing.T) {
	for _, name := range graphNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			t1, err := w.Trace(20000)
			if err != nil {
				t.Fatal(err)
			}
			t2, err := w.Trace(20000)
			if err != nil {
				t.Fatal(err)
			}
			if t1.Len() != t2.Len() {
				t.Fatalf("non-deterministic trace length: %d vs %d", t1.Len(), t2.Len())
			}
			for i := range t1.Insts {
				if t1.Insts[i] != t2.Insts[i] {
					t.Fatalf("trace diverges at instruction %d: %+v vs %+v",
						i, t1.Insts[i], t2.Insts[i])
				}
			}
		})
	}
}

// TestGraphBehaviorProfile checks the kernels actually exhibit the
// behaviors the family was added for: value working sets beyond L1 (the
// neighbor gathers miss) and, for the traversal kernels, data-dependent
// branches the predictor cannot learn.
func TestGraphBehaviorProfile(t *testing.T) {
	for _, name := range graphNames {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := w.Trace(30000)
		if err != nil {
			t.Fatal(err)
		}
		s := tr.ComputeStats()
		beyondL1 := s.Loads + s.Stores - s.L1Hits
		t.Logf("%-9s loads+stores=%d beyondL1=%d mispredicted=%d",
			name, s.Loads+s.Stores, beyondL1, s.Mispredicted)
		if beyondL1 < 500 {
			t.Errorf("%s: only %d accesses beyond L1 — gathers are cache-resident", name, beyondL1)
		}
		if name != "pagerank" && s.Mispredicted < 300 {
			t.Errorf("%s: only %d mispredicts — traversal control is too predictable", name, s.Mispredicted)
		}
	}
}
