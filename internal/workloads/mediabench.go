package workloads

import (
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
)

// The Mediabench kernels are deliberately multi-phase: each "frame"
// iterates through loops with *different* behaviors (a DCT-like dense
// phase, a quantization phase, an entropy-coding-like branchy phase), so
// a single application benefits from multiple BSAs and switches between
// them at runtime — the behavior Figures 13–15 of the paper analyze.

// dctPhase emits an 8-point DCT-ish dense loop over `blocks` blocks.
func dctPhase(b *prog.Builder, label string, blocksReg isa.Reg, src, dst uint64) {
	blk, k, t := isa.R(20), isa.R(21), isa.R(22)
	pS, pD := isa.R(23), isa.R(24)
	b.MovI(blk, 0)
	b.Label(label + "_blocks")
	b.ShlI(t, blk, 6) // 8 words per block
	b.AddI(pS, t, int64(src))
	b.ShlI(t, blk, 6)
	b.AddI(pD, t, int64(dst))
	b.MovI(k, 0)
	b.Label(label + "_pts")
	b.LdF(isa.F(1), pS, 0)
	b.LdF(isa.F(2), pS, 8)
	b.FMul(isa.F(3), isa.F(1), isa.F(20))
	b.FMul(isa.F(4), isa.F(2), isa.F(21))
	b.FAdd(isa.F(5), isa.F(3), isa.F(4))
	b.FSub(isa.F(6), isa.F(3), isa.F(4))
	b.FMul(isa.F(6), isa.F(6), isa.F(22))
	b.StF(isa.F(5), pD, 0)
	b.StF(isa.F(6), pD, 8)
	b.AddI(pS, pS, 16)
	b.AddI(pD, pD, 16)
	b.AddI(k, k, 1)
	b.SltI(t, k, 4)
	b.Bne(t, isa.RZ, label+"_pts")
	b.AddI(blk, blk, 1)
	b.Blt(blk, blocksReg, label+"_blocks")
}

// quantPhase emits a quantize/saturate loop: dense with a biased clamp.
func quantPhase(b *prog.Builder, label string, nReg isa.Reg, src, dst uint64) {
	i, t := isa.R(25), isa.R(26)
	pS, pD := isa.R(27), isa.R(28)
	b.MovI(i, 0)
	b.MovI(pS, int64(src))
	b.MovI(pD, int64(dst))
	b.Label(label + "_q")
	b.LdF(isa.F(1), pS, 0)
	b.FMul(isa.F(2), isa.F(1), isa.F(23))
	b.FSlt(t, isa.F(24), isa.F(2)) // over max? (rare)
	b.Beq(t, isa.RZ, label+"_noclip")
	b.FMov(isa.F(2), isa.F(24))
	b.Label(label + "_noclip")
	b.StF(isa.F(2), pD, 0)
	b.AddI(pS, pS, 8)
	b.AddI(pD, pD, 8)
	b.AddI(i, i, 1)
	b.Blt(i, nReg, label+"_q")
}

// entropyPhase emits a VLC-like loop: table lookups and data-dependent
// branches over symbol magnitude — control-critical, mildly biased.
func entropyPhase(b *prog.Builder, label string, nReg isa.Reg, src, tab, dst uint64) {
	i, t, sym, code, bits := isa.R(29), isa.R(15), isa.R(16), isa.R(17), isa.R(18)
	b.MovI(i, 0)
	b.MovI(bits, 0)
	b.Label(label + "_sym")
	b.ShlI(t, i, 3)
	b.AddI(t, t, int64(src))
	b.Ld(sym, t, 0)
	b.SltI(t, sym, 4)
	b.Bne(t, isa.RZ, label+"_short") // small symbols common
	b.ShlI(t, sym, 3)
	b.AddI(t, t, int64(tab))
	b.Ld(code, t, 0) // long-code table lookup
	b.AddI(bits, bits, 12)
	b.Jmp(label + "_emit")
	b.Label(label + "_short")
	b.ShlI(code, sym, 1)
	b.AddI(code, code, 1)
	b.AddI(bits, bits, 3)
	b.Label(label + "_emit")
	b.ShlI(t, i, 3)
	b.AddI(t, t, int64(dst))
	b.St(code, t, 0)
	b.AddI(i, i, 1)
	b.Blt(i, nReg, label+"_sym")
}

func mediaKernel(name string, frames, blocks, syms int64, smallSymBias int64) *Workload {
	return &Workload{
		Name: name, Suite: "Mediabench", Category: SemiRegular,
		Build: func() (*prog.Program, func(*sim.State)) {
			b := prog.NewBuilder(name)
			frame, nB, nQ, nS := isa.R(1), isa.R(10), isa.R(11), isa.R(12)
			b.MovI(frame, 0)
			b.Label("frames")
			dctPhase(b, "dct", nB, baseA, baseB)
			quantPhase(b, "quant", nQ, baseB, baseC)
			entropyPhase(b, "vlc", nS, baseC, baseD, baseE)
			b.AddI(frame, frame, 1)
			b.SltI(isa.R(2), frame, frames)
			b.Bne(isa.R(2), isa.RZ, "frames")
			return b.MustBuild(), func(st *sim.State) {
				st.SetInt(nB, blocks)
				st.SetInt(nQ, blocks*8)
				st.SetInt(nS, syms)
				st.SetFp(isa.F(20), 0.49)
				st.SetFp(isa.F(21), 0.51)
				st.SetFp(isa.F(22), 0.7071)
				st.SetFp(isa.F(23), 0.125)
				st.SetFp(isa.F(24), 0.9)
				fillF(st, baseA, int(blocks*8), 141)
				fillI(st, baseC, int(syms), smallSymBias, 142)
				fillI(st, baseD, 64, 1<<16, 143)
			}
		},
	}
}

// cjpeg/djpeg and their -2 variants: encode is DCT+quant+VLC; decode is
// the mirror with a different symbol distribution. The "-2" variants use
// larger frames (the paper's cjpeg-2/djpeg-2 inputs).
var (
	_ = register(mediaKernel("cjpeg", 8, 24, 192, 6))
	_ = register(mediaKernel("djpeg", 8, 24, 192, 12))
	_ = register(mediaKernel("cjpeg2", 4, 48, 384, 6))
	_ = register(mediaKernel("djpeg2", 4, 48, 384, 12))
)

// gsm: linear-prediction speech codec — integer MAC loop (autocorrelation)
// plus a saturating filter loop with biased clamps (hot traces).
func gsmKernel(name string, frames int64, clampBias int64) *Workload {
	return &Workload{
		Name: name, Suite: "Mediabench", Category: SemiRegular,
		Build: func() (*prog.Program, func(*sim.State)) {
			const samples, lags = 160, 8
			b := prog.NewBuilder(name)
			frame, lag, i, t, acc := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
			pS, pL, s1, s2 := isa.R(6), isa.R(7), isa.R(8), isa.R(9)
			rS, rL, rF := isa.R(10), isa.R(11), isa.R(12)
			b.MovI(frame, 0)
			b.Label("frames")
			// Autocorrelation: dense integer MACs.
			b.MovI(lag, 0)
			b.Label("lags")
			b.MovI(acc, 0)
			b.MovI(i, 0)
			b.MovI(pS, baseA)
			b.ShlI(pL, lag, 3)
			b.AddI(pL, pL, baseA)
			b.Label("mac")
			b.Ld(s1, pS, 0)
			b.Ld(s2, pL, 0)
			b.Mul(t, s1, s2)
			b.Add(acc, acc, t)
			b.AddI(pS, pS, 8)
			b.AddI(pL, pL, 8)
			b.AddI(i, i, 1)
			b.Blt(i, rS, "mac")
			b.ShlI(t, lag, 3)
			b.AddI(t, t, baseB)
			b.St(acc, t, 0)
			b.AddI(lag, lag, 1)
			b.Blt(lag, rL, "lags")
			// Saturating filter: biased clamp branches (hot path = no clamp).
			b.MovI(i, 0)
			b.MovI(pS, baseA)
			b.Label("filter")
			b.Ld(s1, pS, 0)
			b.MulI(s1, s1, 3)
			b.ShrI(s1, s1, 1)
			b.SltI(t, s1, 32767)
			b.Bne(t, isa.RZ, "nosat")
			b.MovI(s1, 32767)
			b.Label("nosat")
			b.St(s1, pS, 0)
			b.AddI(pS, pS, 8)
			b.AddI(i, i, 1)
			b.Blt(i, rS, "filter")
			b.AddI(frame, frame, 1)
			b.Blt(frame, rF, "frames")
			return b.MustBuild(), func(st *sim.State) {
				st.SetInt(rS, samples)
				st.SetInt(rL, lags)
				st.SetInt(rF, frames)
				fillI(st, baseA, samples+lags, clampBias, 151)
			}
		},
	}
}

var (
	_ = register(gsmKernel("gsmdecode", 10, 9000))
	_ = register(gsmKernel("gsmencode", 10, 15000))
)

// h263enc / mpeg2enc: motion-estimation SAD (integer DLP) + DCT phase.
func videoEncKernel(name string, frames, blocks int64) *Workload {
	return &Workload{
		Name: name, Suite: "Mediabench", Category: SemiRegular,
		Build: func() (*prog.Program, func(*sim.State)) {
			b := prog.NewBuilder(name)
			frame, blk, px, t, acc := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
			pR, pC, diff := isa.R(6), isa.R(7), isa.R(8)
			rB, rP, rF, nB := isa.R(10), isa.R(11), isa.R(12), isa.R(13)
			b.MovI(frame, 0)
			b.Label("frames")
			// Motion estimation: SAD over blocks.
			b.MovI(blk, 0)
			b.Label("me_blocks")
			b.MovI(acc, 0)
			b.Mul(t, blk, rP)
			b.ShlI(t, t, 3)
			b.AddI(pR, t, baseA)
			b.AddI(pC, t, baseB)
			b.MovI(px, 0)
			b.Label("me_px")
			b.Ld(isa.R(14), pR, 0)
			b.Ld(isa.R(15), pC, 0)
			b.Sub(diff, isa.R(14), isa.R(15))
			// Branchless abs (mask idiom, as real codegen emits).
			b.Slt(t, diff, isa.RZ)
			b.Sub(isa.R(16), isa.RZ, t)
			b.Xor(diff, diff, isa.R(16))
			b.Add(diff, diff, t)
			b.Add(acc, acc, diff)
			b.AddI(pR, pR, 8)
			b.AddI(pC, pC, 8)
			b.AddI(px, px, 1)
			b.Blt(px, rP, "me_px")
			b.ShlI(t, blk, 3)
			b.AddI(t, t, baseC)
			b.St(acc, t, 0)
			b.AddI(blk, blk, 1)
			b.Blt(blk, rB, "me_blocks")
			// Transform phase.
			dctPhase(b, "dct", nB, baseA, baseD)
			b.AddI(frame, frame, 1)
			b.Blt(frame, rF, "frames")
			return b.MustBuild(), func(st *sim.State) {
				st.SetInt(rB, blocks)
				st.SetInt(rP, 32)
				st.SetInt(rF, frames)
				st.SetInt(nB, blocks)
				st.SetFp(isa.F(20), 0.49)
				st.SetFp(isa.F(21), 0.51)
				st.SetFp(isa.F(22), 0.7071)
				fillI(st, baseA, int(blocks)*32, 255, 161)
				fillI(st, baseB, int(blocks)*32, 255, 162)
			}
		},
	}
}

var (
	_ = register(videoEncKernel("h263enc", 6, 20))
	_ = register(videoEncKernel("mpeg2enc", 6, 28))
)

// h264dec / mpeg2dec: sub-pixel interpolation filter (dense, short loops)
// + residual reconstruction with clamps (biased control).
func videoDecKernel(name string, frames int64, clampMod int64) *Workload {
	return &Workload{
		Name: name, Suite: "Mediabench", Category: SemiRegular,
		Build: func() (*prog.Program, func(*sim.State)) {
			const pixels = 512
			b := prog.NewBuilder(name)
			frame, i, t := isa.R(1), isa.R(2), isa.R(3)
			pS, pD, v := isa.R(4), isa.R(5), isa.R(6)
			rN, rF := isa.R(10), isa.R(12)
			b.MovI(frame, 0)
			b.Label("frames")
			// 6-tap interpolation (integer, dense).
			b.MovI(i, 0)
			b.MovI(pS, baseA)
			b.MovI(pD, baseB)
			b.Label("interp")
			b.Ld(isa.R(14), pS, 0)
			b.Ld(isa.R(15), pS, 8)
			b.Ld(isa.R(16), pS, 16)
			b.MulI(isa.R(14), isa.R(14), 1)
			b.MulI(isa.R(15), isa.R(15), 5)
			b.MulI(isa.R(16), isa.R(16), 5)
			b.Add(t, isa.R(14), isa.R(15))
			b.Add(t, t, isa.R(16))
			b.ShrI(t, t, 3)
			b.St(t, pD, 0)
			b.AddI(pS, pS, 8)
			b.AddI(pD, pD, 8)
			b.AddI(i, i, 1)
			b.Blt(i, rN, "interp")
			// Residual add + clamp (clamp rare).
			b.MovI(i, 0)
			b.MovI(pS, baseB)
			b.MovI(pD, baseC)
			b.Label("recon")
			b.Ld(v, pS, 0)
			b.ShlI(t, i, 3)
			b.AddI(t, t, baseD)
			b.Ld(isa.R(14), t, 0)
			b.Add(v, v, isa.R(14))
			b.SltI(t, v, 255)
			b.Bne(t, isa.RZ, "noclamp")
			b.MovI(v, 255)
			b.Label("noclamp")
			b.St(v, pD, 0)
			b.AddI(pS, pS, 8)
			b.AddI(pD, pD, 8)
			b.AddI(i, i, 1)
			b.Blt(i, rN, "recon")
			b.AddI(frame, frame, 1)
			b.Blt(frame, rF, "frames")
			return b.MustBuild(), func(st *sim.State) {
				st.SetInt(rN, pixels)
				st.SetInt(rF, frames)
				fillI(st, baseA, pixels+8, 200, 171)
				fillI(st, baseD, pixels, clampMod, 172)
			}
		},
	}
}

var (
	_ = register(videoDecKernel("h264dec", 6, 40))
	_ = register(videoDecKernel("mpeg2dec", 6, 60))
)

// jpg2000: wavelet lifting — the horizontal pass is vectorizable, the
// vertical (in-place lifting) pass carries a dependence through memory.
func jpeg2000Kernel(name string, frames int64) *Workload {
	return &Workload{
		Name: name, Suite: "Mediabench", Category: SemiRegular,
		Build: func() (*prog.Program, func(*sim.State)) {
			const n = 1024
			b := prog.NewBuilder(name)
			frame, i := isa.R(1), isa.R(2)
			pS, pD := isa.R(4), isa.R(5)
			rN, rF := isa.R(10), isa.R(12)
			b.MovI(frame, 0)
			b.Label("frames")
			// Horizontal lifting: independent pairs (vectorizable).
			b.MovI(i, 0)
			b.MovI(pS, baseA)
			b.MovI(pD, baseB)
			b.Label("horiz")
			b.LdF(isa.F(1), pS, 0)
			b.LdF(isa.F(2), pS, 8)
			b.FSub(isa.F(3), isa.F(2), isa.F(1)) // detail
			b.FMul(isa.F(4), isa.F(3), isa.F(20))
			b.FAdd(isa.F(5), isa.F(1), isa.F(4)) // smooth
			b.StF(isa.F(5), pD, 0)
			b.StF(isa.F(3), pD, 8)
			b.AddI(pS, pS, 16)
			b.AddI(pD, pD, 16)
			b.AddI(i, i, 1)
			b.Blt(i, rN, "horiz")
			// Vertical lifting: in-place chain a[i] += k*a[i-1] (carried).
			b.MovI(i, 1)
			b.MovI(pS, baseB+8)
			b.Label("vert")
			b.LdF(isa.F(1), pS, -8)
			b.LdF(isa.F(2), pS, 0)
			b.FMul(isa.F(3), isa.F(1), isa.F(21))
			b.FAdd(isa.F(2), isa.F(2), isa.F(3))
			b.StF(isa.F(2), pS, 0)
			b.AddI(pS, pS, 8)
			b.AddI(i, i, 1)
			b.Blt(i, rN, "vert")
			b.AddI(frame, frame, 1)
			b.Blt(frame, rF, "frames")
			return b.MustBuild(), func(st *sim.State) {
				st.SetInt(rN, n/2)
				st.SetInt(rF, frames)
				st.SetFp(isa.F(20), 0.5)
				st.SetFp(isa.F(21), 0.25)
				fillF(st, baseA, n, 181)
			}
		},
	}
}

var (
	_ = register(jpeg2000Kernel("jpg2000dec", 8))
	_ = register(jpeg2000Kernel("jpg2000enc", 5))
)

// cjpeg is the Mediabench streaming exemplar: the biased VLC symbol
// loop keeps the branch predictor's cross-chunk history load-bearing.
var _ = exemplar("cjpeg")
