package workloads

import (
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
)

// Memory-layout bases shared by the kernels. Each array gets a disjoint
// megabyte so cache behavior is governed by access pattern, not layout
// accidents.
const (
	baseA = 0x10_0000
	baseB = 0x20_0000
	baseC = 0x30_0000
	baseD = 0x40_0000
	baseE = 0x50_0000
)

func fillF(st *sim.State, base uint64, n int, seed uint64) {
	r := newRng(seed)
	for i := 0; i < n; i++ {
		st.Mem.StoreFloat(base+uint64(i)*8, r.f64()*2-1)
	}
}

func fillI(st *sim.State, base uint64, n int, mod int64, seed uint64) {
	r := newRng(seed)
	for i := 0; i < n; i++ {
		st.Mem.StoreInt(base+uint64(i)*8, r.i64(mod))
	}
}

// mm: dense matrix multiply (ikj order: contiguous B and C rows in the
// inner loop — data-parallel, memory/compute separable).
var _ = register(&Workload{
	Name: "mm", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const n = 40
		b := prog.NewBuilder("mm")
		i, k, j := isa.R(1), isa.R(2), isa.R(6)
		t, pB, pC := isa.R(3), isa.R(4), isa.R(5)
		rA, rB, rC, rN := isa.R(10), isa.R(11), isa.R(12), isa.R(13)
		b.MovI(i, 0)
		b.Label("outer_i")
		b.MovI(k, 0)
		b.Label("outer_k")
		b.Mul(t, i, rN).Add(t, t, k).ShlI(t, t, 3).Add(t, t, rA)
		b.LdF(isa.F(1), t, 0) // a[i][k]
		b.Mul(pB, k, rN).ShlI(pB, pB, 3).Add(pB, pB, rB)
		b.Mul(pC, i, rN).ShlI(pC, pC, 3).Add(pC, pC, rC)
		b.MovI(j, 0)
		b.Label("inner_j")
		b.LdF(isa.F(2), pB, 0)
		b.LdF(isa.F(3), pC, 0)
		b.FMul(isa.F(4), isa.F(1), isa.F(2))
		b.FAdd(isa.F(5), isa.F(3), isa.F(4))
		b.StF(isa.F(5), pC, 0)
		b.AddI(pB, pB, 8)
		b.AddI(pC, pC, 8)
		b.AddI(j, j, 1)
		b.Blt(j, rN, "inner_j")
		b.AddI(k, k, 1)
		b.Blt(k, rN, "outer_k")
		b.AddI(i, i, 1)
		b.Blt(i, rN, "outer_i")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rA, baseA)
			st.SetInt(rB, baseB)
			st.SetInt(rC, baseC)
			st.SetInt(rN, n)
			fillF(st, baseA, n*n, 1)
			fillF(st, baseB, n*n, 2)
		}
	},
})

// stencil: 1D 3-point Jacobi sweep — contiguous streams, pure data
// parallelism, SIMD's best case.
var _ = register(&Workload{
	Name: "stencil", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const n = 4096
		b := prog.NewBuilder("stencil")
		i, pA, pB, rN := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		b.MovI(isa.R(9), 0) // sweep counter
		b.Label("sweep")
		b.MovI(i, 1)
		b.MovI(pA, baseA+8)
		b.MovI(pB, baseB+8)
		b.Label("loop")
		b.LdF(isa.F(1), pA, -8)
		b.LdF(isa.F(2), pA, 0)
		b.LdF(isa.F(3), pA, 8)
		b.FMul(isa.F(4), isa.F(1), isa.F(10))
		b.FMul(isa.F(5), isa.F(2), isa.F(11))
		b.FMul(isa.F(6), isa.F(3), isa.F(10))
		b.FAdd(isa.F(7), isa.F(4), isa.F(5))
		b.FAdd(isa.F(8), isa.F(7), isa.F(6))
		b.StF(isa.F(8), pB, 0)
		b.AddI(pA, pA, 8)
		b.AddI(pB, pB, 8)
		b.AddI(i, i, 1)
		b.Blt(i, rN, "loop")
		b.AddI(isa.R(9), isa.R(9), 1)
		b.SltI(isa.R(10), isa.R(9), 64)
		b.Bne(isa.R(10), isa.RZ, "sweep")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rN, n-1)
			st.SetFp(isa.F(10), 0.25)
			st.SetFp(isa.F(11), 0.5)
			fillF(st, baseA, n, 3)
		}
	},
})

// spmv: sparse matrix-vector product in CSR form — indirect (gather)
// loads of the dense vector defeat plain SIMD; the irregular access keeps
// memory on the critical path.
var _ = register(&Workload{
	Name: "spmv", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const rows, nnzPerRow = 256, 12
		b := prog.NewBuilder("spmv")
		row, k, end := isa.R(1), isa.R(2), isa.R(3)
		pVal, pCol, col, t := isa.R(4), isa.R(5), isa.R(6), isa.R(7)
		rX, rY, rRows := isa.R(10), isa.R(11), isa.R(12)
		b.MovI(row, 0)
		b.MovI(pVal, baseA)
		b.MovI(pCol, baseB)
		b.Label("rows")
		b.FMovI(isa.F(1), 0) // accumulator
		b.MovI(k, 0)
		b.MovI(end, nnzPerRow)
		b.Label("nnz")
		b.LdF(isa.F(2), pVal, 0) // value: contiguous
		b.Ld(col, pCol, 0)       // column index: contiguous
		b.ShlI(t, col, 3)
		b.Add(t, t, rX)
		b.LdF(isa.F(3), t, 0) // x[col]: gather
		b.FMul(isa.F(4), isa.F(2), isa.F(3))
		b.FAdd(isa.F(1), isa.F(1), isa.F(4)) // reduction
		b.AddI(pVal, pVal, 8)
		b.AddI(pCol, pCol, 8)
		b.AddI(k, k, 1)
		b.Blt(k, end, "nnz")
		b.ShlI(t, row, 3)
		b.Add(t, t, rY)
		b.StF(isa.F(1), t, 0)
		b.AddI(row, row, 1)
		b.Blt(row, rRows, "rows")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rX, baseC)
			st.SetInt(rY, baseD)
			st.SetInt(rRows, rows)
			fillF(st, baseA, rows*nnzPerRow, 4)
			fillI(st, baseB, rows*nnzPerRow, 4096, 5)
			fillF(st, baseC, 4096, 6)
		}
	},
})

// kmeans: nearest-centroid assignment — distance computation is
// data-parallel compute, but the running-min update is control.
var _ = register(&Workload{
	Name: "kmeans", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const points, clusters, dims = 512, 8, 4
		b := prog.NewBuilder("kmeans")
		p, c, d := isa.R(1), isa.R(2), isa.R(3)
		pP, pC, t := isa.R(4), isa.R(5), isa.R(6)
		best := isa.R(7)
		rPts, rCl, rDim := isa.R(10), isa.R(11), isa.R(12)
		b.MovI(p, 0)
		b.MovI(pP, baseA)
		b.Label("points")
		b.FMovI(isa.F(9), 1e30) // best distance
		b.MovI(best, 0)
		b.MovI(c, 0)
		b.MovI(pC, baseB)
		b.Label("clusters")
		b.FMovI(isa.F(1), 0) // dist accumulator
		b.MovI(d, 0)
		b.Label("dims")
		b.ShlI(t, d, 3)
		b.Add(t, t, pP)
		b.LdF(isa.F(2), t, 0)
		b.ShlI(t, d, 3)
		b.Add(t, t, pC)
		b.LdF(isa.F(3), t, 0)
		b.FSub(isa.F(4), isa.F(2), isa.F(3))
		b.FMul(isa.F(5), isa.F(4), isa.F(4))
		b.FAdd(isa.F(1), isa.F(1), isa.F(5))
		b.AddI(d, d, 1)
		b.Blt(d, rDim, "dims")
		b.FSlt(t, isa.F(1), isa.F(9))
		b.Beq(t, isa.RZ, "notbest")
		b.FMov(isa.F(9), isa.F(1))
		b.Mov(best, c)
		b.Label("notbest")
		b.AddI(pC, pC, dims*8)
		b.AddI(c, c, 1)
		b.Blt(c, rCl, "clusters")
		// store assignment
		b.ShlI(t, p, 3)
		b.AddI(t, t, baseC)
		b.St(best, t, 0)
		b.AddI(pP, pP, dims*8)
		b.AddI(p, p, 1)
		b.Blt(p, rPts, "points")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rPts, points)
			st.SetInt(rCl, clusters)
			st.SetInt(rDim, dims)
			fillF(st, baseA, points*dims, 7)
			fillF(st, baseB, clusters*dims, 8)
		}
	},
})

// mm is the Parboil family's streaming exemplar: the canonical blocked
// dense kernel the paper-scale smoke gate tiles to 200M instructions.
var _ = exemplar("mm")
