package workloads

import (
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
)

// cutcp: cutoff Coulombic potential — distance test guards heavy FP work;
// predication-friendly data parallelism with divergent lanes.
var _ = register(&Workload{
	Name: "cutcp", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const points, atoms = 128, 64
		b := prog.NewBuilder("cutcp")
		pt, at, t := isa.R(1), isa.R(2), isa.R(3)
		pA := isa.R(4)
		rP, rA := isa.R(10), isa.R(11)
		b.MovI(pt, 0)
		b.Label("points")
		b.FMovI(isa.F(1), 0) // potential
		b.ShlI(t, pt, 3)
		b.AddI(t, t, baseA)
		b.LdF(isa.F(2), t, 0) // point coordinate (1-D for brevity)
		b.MovI(at, 0)
		b.MovI(pA, baseB)
		b.Label("atoms")
		b.LdF(isa.F(3), pA, 0) // atom coordinate
		b.LdF(isa.F(4), pA, 8) // atom charge
		b.FSub(isa.F(5), isa.F(3), isa.F(2))
		b.FMul(isa.F(5), isa.F(5), isa.F(5)) // dist²
		b.FSlt(t, isa.F(5), isa.F(10))       // within cutoff?
		b.Beq(t, isa.RZ, "skip")
		b.FAdd(isa.F(6), isa.F(5), isa.F(11)) // + softening
		b.FDiv(isa.F(7), isa.F(4), isa.F(6))
		b.FAdd(isa.F(1), isa.F(1), isa.F(7))
		b.Label("skip")
		b.AddI(pA, pA, 16)
		b.AddI(at, at, 1)
		b.Blt(at, rA, "atoms")
		b.ShlI(t, pt, 3)
		b.AddI(t, t, baseC)
		b.StF(isa.F(1), t, 0)
		b.AddI(pt, pt, 1)
		b.Blt(pt, rP, "points")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rP, points)
			st.SetInt(rA, atoms)
			// Generous cutoff: ~90% of atoms are inside, as with real
			// spatially-binned neighbor lists (mostly-biased branch).
			st.SetFp(isa.F(10), 3.6)
			st.SetFp(isa.F(11), 0.01)
			fillF(st, baseA, points, 71)
			fillF(st, baseB, atoms*2, 72)
		}
	},
})

// fft: radix-2 butterfly stage — strided accesses whose stride halves per
// stage; data-parallel but with non-unit strides (pack/unpack pressure).
var _ = register(&Workload{
	Name: "fft", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const n = 1024
		b := prog.NewBuilder("fft")
		stage, i, half, t, pEven, pOdd := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
		rN := isa.R(10)
		b.MovI(stage, 0)
		b.MovI(half, n/2)
		b.Label("stages")
		b.MovI(i, 0)
		b.MovI(pEven, baseA)
		b.ShlI(t, half, 4)
		b.Add(pOdd, t, pEven) // partner at distance `half` complex points
		b.Label("butterfly")
		// Interleaved complex (re,im) points: stride-16 accesses, the
		// pack/unpack-hostile layout real FFTs fight with.
		b.LdF(isa.F(1), pEven, 0)
		b.LdF(isa.F(2), pEven, 8)
		b.LdF(isa.F(3), pOdd, 0)
		b.LdF(isa.F(4), pOdd, 8)
		b.FMul(isa.F(5), isa.F(3), isa.F(10)) // twiddle re
		b.FMul(isa.F(6), isa.F(4), isa.F(10)) // twiddle im
		b.FAdd(isa.F(7), isa.F(1), isa.F(5))
		b.FAdd(isa.F(8), isa.F(2), isa.F(6))
		b.FSub(isa.F(5), isa.F(1), isa.F(5))
		b.FSub(isa.F(6), isa.F(2), isa.F(6))
		b.StF(isa.F(7), pEven, 0)
		b.StF(isa.F(8), pEven, 8)
		b.StF(isa.F(5), pOdd, 0)
		b.StF(isa.F(6), pOdd, 8)
		b.AddI(pEven, pEven, 16)
		b.AddI(pOdd, pOdd, 16)
		b.AddI(i, i, 1)
		b.Blt(i, half, "butterfly")
		b.ShrI(half, half, 1)
		b.AddI(stage, stage, 1)
		b.SltI(t, stage, 6)
		b.Bne(t, isa.RZ, "stages")
		_ = rN
		return b.MustBuild(), func(st *sim.State) {
			st.SetFp(isa.F(10), 0.7071)
			fillF(st, baseA, n, 81)
		}
	},
})

// lbm: lattice-Boltzmann style site update — many FP ops over several
// contiguous distribution streams; data parallel, high FP intensity.
var _ = register(&Workload{
	Name: "lbm", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const sites = 1024
		b := prog.NewBuilder("lbm")
		i, p0, p1, p2 := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		rN := isa.R(10)
		b.MovI(i, 0)
		b.MovI(p0, baseA)
		b.MovI(p1, baseB)
		b.MovI(p2, baseC)
		b.Label("site")
		b.LdF(isa.F(1), p0, 0)
		b.LdF(isa.F(2), p1, 0)
		b.LdF(isa.F(3), p2, 0)
		// density and momentum
		b.FAdd(isa.F(4), isa.F(1), isa.F(2))
		b.FAdd(isa.F(4), isa.F(4), isa.F(3))
		b.FSub(isa.F(5), isa.F(1), isa.F(3))
		// equilibrium relaxation per direction
		for d := 0; d < 3; d++ {
			src := isa.F(1 + d)
			b.FMul(isa.F(6), isa.F(4), isa.F(10))
			b.FMul(isa.F(7), isa.F(5), isa.F(11))
			b.FAdd(isa.F(6), isa.F(6), isa.F(7))
			b.FSub(isa.F(7), isa.F(6), src)
			b.FMul(isa.F(7), isa.F(7), isa.F(12))
			b.FAdd(isa.F(8), src, isa.F(7))
			switch d {
			case 0:
				b.StF(isa.F(8), p0, 0)
			case 1:
				b.StF(isa.F(8), p1, 0)
			case 2:
				b.StF(isa.F(8), p2, 0)
			}
		}
		b.AddI(p0, p0, 8)
		b.AddI(p1, p1, 8)
		b.AddI(p2, p2, 8)
		b.AddI(i, i, 1)
		b.Blt(i, rN, "site")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rN, sites)
			st.SetFp(isa.F(10), 0.333)
			st.SetFp(isa.F(11), 0.166)
			st.SetFp(isa.F(12), 0.6)
			fillF(st, baseA, sites, 91)
			fillF(st, baseB, sites, 92)
			fillF(st, baseC, sites, 93)
		}
	},
})

// needle: Needleman-Wunsch wavefront DP — every cell depends on the
// previous cell in the row (loop-carried through a register) and the row
// above (carried through memory): not vectorizable, NS-DF territory.
var _ = register(&Workload{
	Name: "needle", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const n = 96
		b := prog.NewBuilder("needle")
		i, j, t, u := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		pRow, pPrev := isa.R(5), isa.R(6)
		left, diag, up, best := isa.R(7), isa.R(8), isa.R(9), isa.R(14)
		rN := isa.R(10)
		b.MovI(i, 1)
		b.Label("rows")
		b.Mul(t, i, rN)
		b.ShlI(t, t, 3)
		b.AddI(pRow, t, baseA)
		b.SubI(pPrev, pRow, n*8)
		b.MovI(left, 0)
		b.MovI(j, 1)
		b.Label("cols")
		b.Ld(diag, pPrev, 0)
		b.Ld(up, pPrev, 8)
		// score = max(diag + match, max(up, left) - gap)
		b.ShlI(t, j, 3)
		b.AddI(t, t, baseB)
		b.Ld(u, t, 0) // match score for this column
		b.Add(diag, diag, u)
		b.Slt(t, up, left)
		b.Beq(t, isa.RZ, "useup")
		b.Mov(best, left)
		b.Jmp("gap")
		b.Label("useup")
		b.Mov(best, up)
		b.Label("gap")
		b.SubI(best, best, 1)
		b.Slt(t, best, diag)
		b.Beq(t, isa.RZ, "store")
		b.Mov(best, diag)
		b.Label("store")
		b.St(best, pRow, 8)
		b.Mov(left, best)
		b.AddI(pRow, pRow, 8)
		b.AddI(pPrev, pPrev, 8)
		b.AddI(j, j, 1)
		b.Blt(j, rN, "cols")
		b.AddI(i, i, 1)
		b.Blt(i, rN, "rows")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rN, n)
			fillI(st, baseA, n, 10, 101)
			fillI(st, baseB, n, 12, 102)
		}
	},
})

// nnw: fully-connected neural layer (matrix-vector + bias) — dense dot
// products, highly regular.
var _ = register(&Workload{
	Name: "nnw", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const out, in = 128, 64
		b := prog.NewBuilder("nnw")
		o, i, t, pW, pX := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
		rOut, rIn := isa.R(10), isa.R(11)
		b.MovI(o, 0)
		b.MovI(pW, baseA)
		b.Label("neurons")
		b.FMovI(isa.F(1), 0)
		b.MovI(i, 0)
		b.MovI(pX, baseB)
		b.Label("dot")
		b.LdF(isa.F(2), pW, 0)
		b.LdF(isa.F(3), pX, 0)
		b.FMul(isa.F(4), isa.F(2), isa.F(3))
		b.FAdd(isa.F(1), isa.F(1), isa.F(4))
		b.AddI(pW, pW, 8)
		b.AddI(pX, pX, 8)
		b.AddI(i, i, 1)
		b.Blt(i, rIn, "dot")
		// bias + ReLU (biased branch: most activations positive here)
		b.ShlI(t, o, 3)
		b.AddI(t, t, baseC)
		b.LdF(isa.F(5), t, 0)
		b.FAdd(isa.F(1), isa.F(1), isa.F(5))
		b.FSlt(t, isa.F(1), isa.F(10))
		b.Beq(t, isa.RZ, "relu_done")
		b.FMov(isa.F(1), isa.F(10))
		b.Label("relu_done")
		b.ShlI(t, o, 3)
		b.AddI(t, t, baseD)
		b.StF(isa.F(1), t, 0)
		b.AddI(o, o, 1)
		b.Blt(o, rOut, "neurons")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rOut, out)
			st.SetInt(rIn, in)
			st.SetFp(isa.F(10), 0)
			fillF(st, baseA, out*in, 111)
			fillF(st, baseB, in, 112)
			fillF(st, baseC, out, 113)
		}
	},
})

// sad: sum-of-absolute-differences motion-estimation kernel — integer
// data parallelism with a compare-subtract idiom.
var _ = register(&Workload{
	Name: "sad", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const blocks, pixels = 256, 64
		b := prog.NewBuilder("sad")
		blk, px, t, acc := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		pRef, pCur, diff := isa.R(5), isa.R(6), isa.R(7)
		rB, rP := isa.R(10), isa.R(11)
		b.MovI(blk, 0)
		b.Label("blocks")
		b.MovI(acc, 0)
		b.Mul(t, blk, rP)
		b.ShlI(t, t, 3)
		b.AddI(pRef, t, baseA)
		b.AddI(pCur, t, baseB)
		b.MovI(px, 0)
		b.Label("pixels")
		b.Ld(isa.R(8), pRef, 0)
		b.Ld(isa.R(9), pCur, 0)
		b.Sub(diff, isa.R(8), isa.R(9))
		// Branchless abs, as real codegen emits (cmov/mask idiom):
		// sign = (diff<0) ? 1 : 0; diff = (diff ^ -sign) + sign.
		b.Slt(t, diff, isa.RZ)
		b.Sub(isa.R(12), isa.RZ, t) // -sign mask
		b.Xor(diff, diff, isa.R(12))
		b.Add(diff, diff, t)
		b.Add(acc, acc, diff)
		b.AddI(pRef, pRef, 8)
		b.AddI(pCur, pCur, 8)
		b.AddI(px, px, 1)
		b.Blt(px, rP, "pixels")
		b.ShlI(t, blk, 3)
		b.AddI(t, t, baseC)
		b.St(acc, t, 0)
		b.AddI(blk, blk, 1)
		b.Blt(blk, rB, "blocks")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rB, blocks)
			st.SetInt(rP, pixels)
			fillI(st, baseA, blocks*pixels, 255, 121)
			fillI(st, baseB, blocks*pixels, 255, 122)
		}
	},
})

// tpacf: angular-correlation histogram — FP compute producing an
// unpredictable bin index, then an indirect read-modify-write: the
// histogram update is a memory-carried dependence.
var _ = register(&Workload{
	Name: "tpacf", Suite: "Parboil", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const pairs, bins = 4096, 64
		b := prog.NewBuilder("tpacf")
		i, t, bin := isa.R(1), isa.R(2), isa.R(3)
		rN, rBins := isa.R(10), isa.R(11)
		b.MovI(i, 0)
		b.Label("pairs")
		b.ShlI(t, i, 3)
		b.AddI(t, t, baseA)
		b.LdF(isa.F(1), t, 0) // dot product of the pair (precomputed)
		b.FMul(isa.F(2), isa.F(1), isa.F(10))
		b.FAdd(isa.F(2), isa.F(2), isa.F(11))
		b.FCvt(isa.F(3), rBins)
		b.FMul(isa.F(2), isa.F(2), isa.F(3))
		// bin = int(f2) via store/load float trick avoided: use compare ladder
		b.FSlt(bin, isa.F(2), isa.F(12)) // crude 2-level binning
		b.ShlI(t, bin, 3)
		b.Mul(bin, i, rBins)
		b.Rem(bin, bin, rBins) // pseudo-random bin spread
		b.ShlI(t, bin, 3)
		b.AddI(t, t, baseC)
		b.Ld(isa.R(4), t, 0)
		b.AddI(isa.R(4), isa.R(4), 1)
		b.St(isa.R(4), t, 0)
		b.AddI(i, i, 1)
		b.Blt(i, rN, "pairs")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rN, pairs)
			st.SetInt(rBins, bins)
			st.SetFp(isa.F(10), 0.5)
			st.SetFp(isa.F(11), 0.5)
			st.SetFp(isa.F(12), 0.7)
			fillF(st, baseA, pairs, 131)
		}
	},
})

// fft is the second Parboil file's streaming exemplar: strided
// butterflies give the cache model non-trivial cross-chunk state.
var _ = exemplar("fft")
