package workloads

import (
	"fmt"

	"exocore/internal/bpred"
	"exocore/internal/cache"
	"exocore/internal/prog"
	"exocore/internal/sim"
	"exocore/internal/trace"
)

// SourceConfig parameterizes a generator-driven trace source.
type SourceConfig struct {
	// MaxDyn caps the dynamic instructions synthesized (<= 0 = default).
	MaxDyn int
	// ChunkInsts bounds each chunk (<= 0 = trace.DefaultChunkInsts).
	ChunkInsts int
	// Hierarchy is the cache model annotating the stream; it must be
	// fresh (annotation mutates it). nil selects the default hierarchy.
	Hierarchy *cache.Hierarchy
	// Loop re-runs the kernel (fresh memory image, same seed data) each
	// time it exits until MaxDyn instructions have been synthesized —
	// the steady-state-repeated-kernel mode paper-scale runs use, since
	// the synthetic kernels' natural executions are far shorter than
	// 200M instructions. Cache and branch-predictor state deliberately
	// carries across repeats, so later iterations model the warmed
	// steady state. Off, the source ends exactly where Run would.
	Loop bool
}

// Source returns a generator-driven trace.Source for the workload: each
// Next synthesizes one chunk of dynamic instructions on demand (resumable
// functional simulation) and annotates it with cache latencies and branch
// predictions, with all model state carried across chunk boundaries.
// Drained non-loop sources yield byte-for-byte the instructions TraceWith
// materializes, at every chunk size. Buffers recycle through a pool, so
// resident trace memory is O(chunks in flight) regardless of MaxDyn.
//
// Build cannot fail, so construction always succeeds; simulation faults
// surface through Err after Next returns false.
func (w *Workload) Source(cfg SourceConfig) *GenSource {
	if cfg.MaxDyn <= 0 {
		cfg.MaxDyn = sim.DefaultMaxDyn
	}
	if cfg.ChunkInsts <= 0 {
		cfg.ChunkInsts = trace.DefaultChunkInsts
	}
	// Never allocate more buffer than the budget can fill: a small run
	// through the streaming path must not pay a paper-scale chunk.
	if cfg.ChunkInsts > cfg.MaxDyn {
		cfg.ChunkInsts = cfg.MaxDyn
	}
	if cfg.Hierarchy == nil {
		cfg.Hierarchy = cache.DefaultHierarchy()
	}
	p, prep := w.Build()
	s := &GenSource{
		w:      w,
		p:      p,
		prep:   prep,
		h:      cfg.Hierarchy,
		bp:     bpred.New(bpred.DefaultConfig()),
		pool:   trace.NewChunkPool(cfg.ChunkInsts),
		budget: cfg.MaxDyn,
		loop:   cfg.Loop,
	}
	s.restart()
	return s
}

// GenSource is a workload's generator-driven trace source. It implements
// trace.Source and trace.ChunkAccounting.
type GenSource struct {
	w    *Workload
	p    *prog.Program
	prep func(*sim.State)
	sp   *sim.Stepper
	h    *cache.Hierarchy
	bp   *bpred.Predictor
	pool *trace.ChunkPool

	budget    int
	base      int
	loop      bool
	restarted bool // last restart has produced no instructions yet
	done      bool
	err       error
	stats     trace.Stats
}

func (s *GenSource) restart() {
	st := sim.NewState()
	if s.prep != nil {
		s.prep(st)
	}
	s.sp = sim.NewStepper(s.p, st)
	s.restarted = true
}

// Prog implements trace.Source.
func (s *GenSource) Prog() *prog.Program { return s.p }

// Err implements trace.Source.
func (s *GenSource) Err() error { return s.err }

// Next implements trace.Source, synthesizing and annotating one chunk.
func (s *GenSource) Next() (*trace.Chunk, bool) {
	if s.done || s.budget <= 0 {
		s.done = true
		return nil, false
	}
	c := s.pool.Get()
	want := s.pool.ChunkInsts()
	if want > s.budget {
		want = s.budget
	}
	buf := c.Insts[:want]
	n := 0
	for n < want {
		w, running := s.sp.Fill(buf[n:want])
		n += w
		if w > 0 {
			s.restarted = false
		}
		if running {
			continue // chunk full
		}
		if err := s.sp.Err(); err != nil {
			s.err = fmt.Errorf("workloads: %s: %w", s.w.Name, err)
			s.done = true
			break
		}
		// Program exit.
		if !s.loop {
			s.done = true
			break
		}
		if s.restarted {
			// A fresh run produced nothing: the program exits
			// immediately and looping cannot make progress.
			s.done = true
			break
		}
		s.restart()
	}
	if n == 0 {
		c.Release()
		return nil, false
	}
	c.Insts = buf[:n]
	c.Base = s.base
	s.h.AnnotateInsts(s.p, c.Insts)
	s.bp.AnnotateInsts(s.p, c.Insts)
	s.stats.Accumulate(s.p, c.Insts)
	s.base += n
	s.budget -= n
	return c, true
}

// Stats returns the merged per-chunk statistics of everything yielded so
// far — after the source is drained, exactly the whole-trace
// ComputeStats of the materialized equivalent.
func (s *GenSource) Stats() trace.Stats { return s.stats }

// ChunkHighWaterBytes implements trace.ChunkAccounting: the peak bytes
// of chunk buffers simultaneously checked out of the source's pool.
func (s *GenSource) ChunkHighWaterBytes() int64 { return s.pool.HighWaterBytes() }

// streamExemplars collects one representative kernel per workload family
// (each family file nominates its own): the benches the streaming
// identity tests and the paper-scale smoke gate exercise.
var streamExemplars []string

func exemplar(name string) string {
	streamExemplars = append(streamExemplars, name)
	return name
}

// StreamExemplars returns one representative kernel per workload family
// for streaming-pipeline validation, in nomination order.
func StreamExemplars() []string {
	return append([]string(nil), streamExemplars...)
}
