package workloads

import (
	"reflect"
	"testing"

	"exocore/internal/trace"
)

// TestStreamExemplarsCoverFamilies pins the per-family exemplar list:
// every workload source file nominates exactly one kernel, and each must
// resolve in the registry.
func TestStreamExemplarsCoverFamilies(t *testing.T) {
	ex := StreamExemplars()
	if len(ex) != 7 {
		t.Fatalf("got %d stream exemplars %v, want one per family file (7)", len(ex), ex)
	}
	seen := map[string]bool{}
	for _, name := range ex {
		if seen[name] {
			t.Fatalf("duplicate exemplar %q", name)
		}
		seen[name] = true
		if _, err := ByName(name); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSourceMatchesTrace is the family-coverage identity gate: for every
// family's exemplar kernel, draining the generator-driven source at
// several chunk sizes must reproduce the materialized TraceWith bytes
// exactly — same instructions, same cache annotations, same
// branch-predictor flags — and the source's merged per-chunk statistics
// must equal the whole-trace scan.
func TestSourceMatchesTrace(t *testing.T) {
	const maxDyn = 30_000
	for _, name := range StreamExemplars() {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := w.Trace(maxDyn)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 257, 4096, 1 << 20} {
			src := w.Source(SourceConfig{MaxDyn: maxDyn, ChunkInsts: chunk})
			got, err := trace.Materialize(src, maxDyn)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Insts, want.Insts) {
				t.Fatalf("%s chunk %d: streamed trace differs from materialized", name, chunk)
			}
			if st := src.Stats(); st != want.ComputeStats() {
				t.Fatalf("%s chunk %d: source stats %+v != trace stats %+v",
					name, chunk, st, want.ComputeStats())
			}
		}
	}
}

// TestLoopSourceExtendsTrace checks the paper-scale loop mode: when the
// kernel's natural execution is shorter than the budget, the looped
// source re-runs it to fill the budget exactly, and the first natural
// run is bit-identical to the non-loop stream (model state carries, so
// later repeats see a warmed cache and trained predictor).
func TestLoopSourceExtendsTrace(t *testing.T) {
	w, err := ByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	natural, err := w.Trace(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	n := natural.Len()
	budget := n*2 + n/2
	src := w.Source(SourceConfig{MaxDyn: budget, ChunkInsts: 4096, Loop: true})
	got, err := trace.Materialize(src, budget)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != budget {
		t.Fatalf("looped source yielded %d insts, want %d (natural run %d)", got.Len(), budget, n)
	}
	if !reflect.DeepEqual(got.Insts[:n], natural.Insts) {
		t.Fatal("first repeat of looped stream differs from the natural run")
	}
	// Repeats execute the same instruction sequence (only annotations may
	// differ as the cache warms).
	for i := 0; i < n/2; i++ {
		if got.Insts[n+i].SI != got.Insts[i].SI {
			t.Fatalf("repeat diverges at %d: SI %d != %d", i, got.Insts[n+i].SI, got.Insts[i].SI)
		}
	}
}

// TestSourceChunkAccounting checks the resident-buffer gauge source: the
// high-water mark reflects pooled buffers actually outstanding, not the
// total synthesized.
func TestSourceChunkAccounting(t *testing.T) {
	w, err := ByName("conv")
	if err != nil {
		t.Fatal(err)
	}
	src := w.Source(SourceConfig{MaxDyn: 20_000, ChunkInsts: 1024})
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		c.Release()
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	// Released promptly, so only one buffer was ever outstanding.
	if want := int64(1024 * 16); src.ChunkHighWaterBytes() != want {
		t.Fatalf("chunk high water %d, want %d", src.ChunkHighWaterBytes(), want)
	}
}
