package workloads

import (
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
)

// milc: SU(3) matrix-vector multiply — dense complex FP arithmetic in
// short fixed-trip loops (semi-regular: dense but deeply nested small
// loops limit vector length).
var _ = register(&Workload{
	Name: "milc", Suite: "SPECfp", Category: SemiRegular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const sites = 384
		b := prog.NewBuilder("milc")
		s, r, c, t := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		pM, pV, pO := isa.R(5), isa.R(6), isa.R(7)
		rS := isa.R(10)
		b.MovI(s, 0)
		b.Label("sites")
		b.ShlI(t, s, 6)
		b.AddI(pM, t, baseA) // 3x3 matrix per site (9 words)
		b.ShlI(t, s, 5)
		b.AddI(pV, t, baseB) // 3-vector per site
		b.ShlI(t, s, 5)
		b.AddI(pO, t, baseC)
		b.MovI(r, 0)
		b.Label("rows")
		b.FMovI(isa.F(1), 0)
		b.MovI(c, 0)
		b.Label("cols")
		b.LdF(isa.F(2), pM, 0)
		b.ShlI(t, c, 3)
		b.Add(t, t, pV)
		b.LdF(isa.F(3), t, 0)
		b.FMul(isa.F(4), isa.F(2), isa.F(3))
		b.FAdd(isa.F(1), isa.F(1), isa.F(4))
		b.AddI(pM, pM, 8)
		b.AddI(c, c, 1)
		b.SltI(t, c, 3)
		b.Bne(t, isa.RZ, "cols")
		b.ShlI(t, r, 3)
		b.Add(t, t, pO)
		b.StF(isa.F(1), t, 0)
		b.AddI(r, r, 1)
		b.SltI(t, r, 3)
		b.Bne(t, isa.RZ, "rows")
		b.AddI(s, s, 1)
		b.Blt(s, rS, "sites")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rS, sites)
			fillF(st, baseA, sites*9, 201)
			fillF(st, baseB, sites*4, 202)
		}
	},
})

// namd: pairwise force with cutoff — like cutcp but with neighbor-list
// indirection (gathers) and a less-biased cutoff branch.
var _ = register(&Workload{
	Name: "namd", Suite: "SPECfp", Category: SemiRegular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const atoms, neighbors = 192, 16
		b := prog.NewBuilder("namd")
		a, nIdx, t, j := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		pN := isa.R(5)
		rA, rN := isa.R(10), isa.R(11)
		b.MovI(a, 0)
		b.Label("atoms")
		b.ShlI(t, a, 3)
		b.AddI(t, t, baseA)
		b.LdF(isa.F(1), t, 0) // xi
		b.FMovI(isa.F(2), 0)  // force acc
		b.Mul(pN, a, rN)
		b.ShlI(pN, pN, 3)
		b.AddI(pN, pN, baseB)
		b.MovI(nIdx, 0)
		b.Label("pairs")
		b.Ld(j, pN, 0) // neighbor index
		b.ShlI(t, j, 3)
		b.AddI(t, t, baseA)
		b.LdF(isa.F(3), t, 0) // xj (gather)
		b.FSub(isa.F(4), isa.F(3), isa.F(1))
		b.FMul(isa.F(5), isa.F(4), isa.F(4))
		b.FSlt(t, isa.F(5), isa.F(10))
		b.Beq(t, isa.RZ, "far")
		b.FAdd(isa.F(6), isa.F(5), isa.F(11))
		b.FDiv(isa.F(7), isa.F(12), isa.F(6))
		b.FMul(isa.F(7), isa.F(7), isa.F(4))
		b.FAdd(isa.F(2), isa.F(2), isa.F(7))
		b.Label("far")
		b.AddI(pN, pN, 8)
		b.AddI(nIdx, nIdx, 1)
		b.Blt(nIdx, rN, "pairs")
		b.ShlI(t, a, 3)
		b.AddI(t, t, baseC)
		b.StF(isa.F(2), t, 0)
		b.AddI(a, a, 1)
		b.Blt(a, rA, "atoms")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rA, atoms)
			st.SetInt(rN, neighbors)
			st.SetFp(isa.F(10), 0.5)
			st.SetFp(isa.F(11), 0.05)
			st.SetFp(isa.F(12), 1.0)
			fillF(st, baseA, atoms, 211)
			fillI(st, baseB, atoms*neighbors, atoms, 212)
		}
	},
})

// soplex: simplex pricing pass — sparse column scan with a running
// argmin: FP compare-and-update control plus indirect access.
var _ = register(&Workload{
	Name: "soplex", Suite: "SPECfp", Category: SemiRegular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const cols, nnz = 256, 10
		b := prog.NewBuilder("soplex")
		c, k, t, idx, bestI := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
		pV, pI := isa.R(6), isa.R(7)
		rC, rK := isa.R(10), isa.R(11)
		b.MovI(c, 0)
		b.MovI(bestI, 0)
		b.FMovI(isa.F(9), 1e30)
		b.Label("cols")
		b.FMovI(isa.F(1), 0)
		b.Mul(t, c, rK)
		b.ShlI(t, t, 3)
		b.AddI(pV, t, baseA)
		b.Mul(t, c, rK)
		b.ShlI(t, t, 3)
		b.AddI(pI, t, baseB)
		b.MovI(k, 0)
		b.Label("scan")
		b.LdF(isa.F(2), pV, 0)
		b.Ld(idx, pI, 0)
		b.ShlI(t, idx, 3)
		b.AddI(t, t, baseC)
		b.LdF(isa.F(3), t, 0) // dual value (gather)
		b.FMul(isa.F(4), isa.F(2), isa.F(3))
		b.FAdd(isa.F(1), isa.F(1), isa.F(4))
		b.AddI(pV, pV, 8)
		b.AddI(pI, pI, 8)
		b.AddI(k, k, 1)
		b.Blt(k, rK, "scan")
		// Running argmin (data-dependent, ~unpredictable early on).
		b.FSlt(t, isa.F(1), isa.F(9))
		b.Beq(t, isa.RZ, "nomin")
		b.FMov(isa.F(9), isa.F(1))
		b.Mov(bestI, c)
		b.Label("nomin")
		b.AddI(c, c, 1)
		b.Blt(c, rC, "cols")
		b.ShlI(t, bestI, 3)
		b.AddI(t, t, baseD)
		b.St(bestI, t, 0)
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rC, cols)
			st.SetInt(rK, nnz)
			fillF(st, baseA, cols*nnz, 221)
			fillI(st, baseB, cols*nnz, 512, 222)
			fillF(st, baseC, 512, 223)
		}
	},
})

// sphinx3: Gaussian mixture scoring — dense FP with a pruning branch
// (score below beam skips the tail), semi-regular.
var _ = register(&Workload{
	Name: "sphinx3", Suite: "SPECfp", Category: SemiRegular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const frames, gaussians, dims = 24, 32, 8
		b := prog.NewBuilder("sphinx3")
		f, g, d, t := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		pM, pV, pX := isa.R(5), isa.R(6), isa.R(7)
		rF, rG, rD := isa.R(10), isa.R(11), isa.R(12)
		b.MovI(f, 0)
		b.Label("frames")
		b.ShlI(t, f, 6)
		b.AddI(pX, t, baseC)
		b.MovI(g, 0)
		b.MovI(pM, baseA)
		b.MovI(pV, baseB)
		b.Label("gauss")
		b.FMovI(isa.F(1), 0)
		b.MovI(d, 0)
		b.Label("dims")
		b.ShlI(t, d, 3)
		b.Add(t, t, pX)
		b.LdF(isa.F(2), t, 0)
		b.LdF(isa.F(3), pM, 0)
		b.LdF(isa.F(4), pV, 0)
		b.FSub(isa.F(5), isa.F(2), isa.F(3))
		b.FMul(isa.F(5), isa.F(5), isa.F(5))
		b.FMul(isa.F(5), isa.F(5), isa.F(4))
		b.FAdd(isa.F(1), isa.F(1), isa.F(5))
		// Beam prune: exit dims early when score already too bad (rare
		// for the first dims, biased taken-through).
		b.FSlt(t, isa.F(10), isa.F(1))
		b.Bne(t, isa.RZ, "pruned")
		b.AddI(pM, pM, 8)
		b.AddI(pV, pV, 8)
		b.AddI(d, d, 1)
		b.Blt(d, rD, "dims")
		b.Label("pruned")
		b.ShlI(t, g, 3)
		b.AddI(t, t, baseD)
		b.StF(isa.F(1), t, 0)
		b.AddI(g, g, 1)
		b.Blt(g, rG, "gauss")
		b.AddI(f, f, 1)
		b.Blt(f, rF, "frames")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rF, frames)
			st.SetInt(rG, gaussians)
			st.SetInt(rD, dims)
			st.SetFp(isa.F(10), 40.0) // generous beam: rarely prunes
			fillF(st, baseA, gaussians*dims, 231)
			fillF(st, baseB, gaussians*dims, 232)
			fillF(st, baseC, frames*dims, 233)
		}
	},
})

// tpch1: scan-filter-aggregate (TPC-H Q1 style) — a predicated columnar
// scan, vectorizable with masks.
var _ = register(&Workload{
	Name: "tpch1", Suite: "TPCH", Category: SemiRegular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const tuples = 4096
		b := prog.NewBuilder("tpch1")
		i, t := isa.R(1), isa.R(2)
		pQ, pP, pD := isa.R(3), isa.R(4), isa.R(5)
		rN := isa.R(10)
		b.MovI(i, 0)
		b.MovI(pQ, baseA)
		b.MovI(pP, baseB)
		b.MovI(pD, baseC)
		b.FMovI(isa.F(1), 0) // sum(qty*price) for passing tuples
		b.Label("scan")
		b.Ld(t, pD, 0) // date column
		b.SltI(t, t, 880)
		b.Beq(t, isa.RZ, "fail") // selectivity ~88% (Q1 passes most rows)
		b.LdF(isa.F(2), pQ, 0)
		b.LdF(isa.F(3), pP, 0)
		b.FMul(isa.F(4), isa.F(2), isa.F(3))
		b.FAdd(isa.F(1), isa.F(1), isa.F(4))
		b.Label("fail")
		b.AddI(pQ, pQ, 8)
		b.AddI(pP, pP, 8)
		b.AddI(pD, pD, 8)
		b.AddI(i, i, 1)
		b.Blt(i, rN, "scan")
		b.StF(isa.F(1), isa.RZ, baseD)
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rN, tuples)
			fillF(st, baseA, tuples, 241)
			fillF(st, baseB, tuples, 242)
			fillI(st, baseC, tuples, 1000, 243)
		}
	},
})

// tpch2: hash-join probe (TPC-H Q2 style) — hashed bucket lookups with a
// short chain walk: irregular access, data-dependent control.
var _ = register(&Workload{
	Name: "tpch2", Suite: "TPCH", Category: SemiRegular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const probes, buckets = 2048, 1024
		b := prog.NewBuilder("tpch2")
		i, key, h, node, nk, t := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
		rN, rMask := isa.R(10), isa.R(11)
		b.MovI(i, 0)
		b.Label("probe")
		b.ShlI(t, i, 3)
		b.AddI(t, t, baseA)
		b.Ld(key, t, 0)
		b.And(h, key, rMask)
		b.ShlI(h, h, 3)
		b.AddI(h, h, baseB)
		b.Ld(node, h, 0) // bucket head
		b.Label("chain")
		b.Beq(node, isa.RZ, "miss")
		b.Ld(nk, node, 0)
		b.Beq(nk, key, "hit")
		b.Ld(node, node, 8) // next
		b.Jmp("chain")
		b.Label("hit")
		b.Ld(t, node, 16) // payload
		b.ShlI(nk, i, 3)
		b.AddI(nk, nk, baseD)
		b.St(t, nk, 0)
		b.Label("miss")
		b.AddI(i, i, 1)
		b.Blt(i, rN, "probe")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rN, probes)
			st.SetInt(rMask, buckets-1)
			// Build a chained hash table at baseC; heads at baseB.
			r := newRng(251)
			next := uint64(baseC)
			for k := 0; k < buckets*2; k++ {
				key := r.i64(1 << 20)
				h := uint64(key) & (buckets - 1)
				headAddr := uint64(baseB) + h*8
				prev := st.Mem.LoadInt(headAddr)
				st.Mem.StoreInt(next, key)         // key
				st.Mem.StoreInt(next+8, prev)      // next
				st.Mem.StoreInt(next+16, int64(k)) // payload
				st.Mem.StoreInt(headAddr, int64(next))
				next += 24
			}
			for i := 0; i < probes; i++ {
				st.Mem.StoreInt(baseA+uint64(i)*8, r.i64(1<<20))
			}
		}
	},
})

// povray: ray-sphere intersection batch — FP-heavy discriminant
// computation with a hit/miss branch and a square-root-free fast path
// (semi-regular: dense math, moderately biased control).
var _ = register(&Workload{
	Name: "povray", Suite: "SPECfp", Category: SemiRegular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const rays, spheres = 192, 12
		b := prog.NewBuilder("povray")
		ray, sph, t := isa.R(1), isa.R(2), isa.R(3)
		pS := isa.R(4)
		rR, rS := isa.R(10), isa.R(11)
		b.MovI(ray, 0)
		b.Label("rays")
		b.ShlI(t, ray, 3)
		b.AddI(t, t, baseA)
		b.LdF(isa.F(1), t, 0)   // ray direction component (1-D proxy)
		b.FMovI(isa.F(9), 1e30) // nearest hit
		b.MovI(sph, 0)
		b.MovI(pS, baseB)
		b.Label("spheres")
		b.LdF(isa.F(2), pS, 0)               // center
		b.LdF(isa.F(3), pS, 8)               // radius²
		b.FSub(isa.F(4), isa.F(2), isa.F(1)) // oc
		b.FMul(isa.F(5), isa.F(4), isa.F(4)) // oc²
		b.FSub(isa.F(6), isa.F(5), isa.F(3)) // discriminant proxy
		// Miss if discriminant positive-large (common): biased branch.
		b.FSlt(t, isa.F(6), isa.F(10))
		b.Beq(t, isa.RZ, "miss")
		b.FDiv(isa.F(7), isa.F(6), isa.F(3)) // hit distance proxy
		b.FSlt(t, isa.F(7), isa.F(9))
		b.Beq(t, isa.RZ, "miss")
		b.FMov(isa.F(9), isa.F(7))
		b.Label("miss")
		b.AddI(pS, pS, 16)
		b.AddI(sph, sph, 1)
		b.Blt(sph, rS, "spheres")
		b.ShlI(t, ray, 3)
		b.AddI(t, t, baseC)
		b.StF(isa.F(9), t, 0)
		b.AddI(ray, ray, 1)
		b.Blt(ray, rR, "rays")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rR, rays)
			st.SetInt(rS, spheres)
			st.SetFp(isa.F(10), 0.12) // ~25% of tests pass the first gate
			fillF(st, baseA, rays, 261)
			fillF(st, baseB, spheres*2, 262)
		}
	},
})

// milc is the SPECfp streaming exemplar: long FP dependence chains over
// a working set big enough to keep L2 state live across chunks.
var _ = exemplar("milc")
