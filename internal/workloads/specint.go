package workloads

import (
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
)

// gzip: LZ77 longest-match search — byte-compare inner loop with a
// data-dependent early exit; the match loop is a hot trace of variable
// length.
var _ = register(&Workload{
	Name: "gzip", Suite: "SPECint", Category: Irregular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const positions, window = 512, 24
		b := prog.NewBuilder("gzip")
		pos, cand, t, length := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		pA, pB, c1, c2 := isa.R(5), isa.R(6), isa.R(7), isa.R(8)
		rP, rW := isa.R(10), isa.R(11)
		b.MovI(pos, 0)
		b.Label("positions")
		b.MovI(cand, 0)
		b.Label("cands")
		// Compare strings at pos and pos-cand-1.
		b.MovI(length, 0)
		b.ShlI(t, pos, 3)
		b.AddI(pA, t, baseA)
		b.Sub(t, pos, cand)
		b.ShlI(t, t, 3)
		b.AddI(pB, t, baseB)
		b.Label("match")
		b.Ld(c1, pA, 0)
		b.Ld(c2, pB, 0)
		b.Bne(c1, c2, "mismatch") // data-dependent exit
		b.AddI(pA, pA, 8)
		b.AddI(pB, pB, 8)
		b.AddI(length, length, 1)
		b.SltI(t, length, 16)
		b.Bne(t, isa.RZ, "match")
		b.Label("mismatch")
		b.ShlI(t, pos, 3)
		b.AddI(t, t, baseC)
		b.St(length, t, 0)
		b.AddI(cand, cand, 1)
		b.Blt(cand, rW, "cands")
		b.AddI(pos, pos, 1)
		b.Blt(pos, rP, "positions")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rP, positions)
			st.SetInt(rW, window)
			fillI(st, baseA, positions+16, 4, 301) // small alphabet: some matches
			fillI(st, baseB, positions+window+16, 4, 301)
		}
	},
})

// mcf: network-simplex arc scan — pointer-linked arc list with
// unpredictable profitability branches and cache-hostile node accesses.
func mcfKernel(name string, arcs int64, seed uint64) *Workload {
	return &Workload{
		Name: name, Suite: "SPECint", Category: Irregular,
		Build: func() (*prog.Program, func(*sim.State)) {
			b := prog.NewBuilder(name)
			arc, t, head, tail, cost, pot := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
			pArc, found := isa.R(7), isa.R(8)
			rA := isa.R(10)
			b.MovI(arc, 0)
			b.MovI(found, 0)
			b.MovI(pArc, baseA) // linked arc list, as in the real code
			b.Label("arcs")
			b.Ld(head, pArc, 0)  // head node index
			b.Ld(tail, pArc, 8)  // tail node index
			b.Ld(cost, pArc, 16) // arc cost
			// Load node potentials (scattered).
			b.ShlI(t, head, 3)
			b.AddI(t, t, baseB)
			b.Ld(pot, t, 0)
			b.Sub(cost, cost, pot)
			b.ShlI(t, tail, 3)
			b.AddI(t, t, baseB)
			b.Ld(pot, t, 0)
			b.Add(cost, cost, pot)
			// Profitable? (unpredictable)
			b.Slt(t, cost, isa.RZ)
			b.Beq(t, isa.RZ, "skip")
			b.AddI(found, found, 1)
			b.ShlI(t, found, 3)
			b.AddI(t, t, baseC)
			b.St(arc, t, 0)
			b.Label("skip")
			b.Ld(pArc, pArc, 24) // pointer-chase to the next arc
			b.AddI(arc, arc, 1)
			b.Blt(arc, rA, "arcs")
			return b.MustBuild(), func(st *sim.State) {
				st.SetInt(rA, arcs)
				r := newRng(seed)
				const nodes = 16384
				// Arcs are scattered through a large region and linked in a
				// random permutation — the cache-hostile layout of the real
				// network-simplex arc lists.
				stride := uint64(arcs)*5 + 1 // co-prime-ish scatter
				slots := uint64(arcs) * 8
				cur := uint64(0)
				for i := int64(0); i < arcs; i++ {
					nextSlot := (cur + stride) % slots
					addr := uint64(baseA) + cur*32
					st.Mem.StoreInt(addr, r.i64(nodes))
					st.Mem.StoreInt(addr+8, r.i64(nodes))
					st.Mem.StoreInt(addr+16, r.i64(200)-100)
					st.Mem.StoreInt(addr+24, int64(uint64(baseA)+nextSlot*32))
					cur = nextSlot
				}
				fillI(st, baseB, nodes, 100, seed+1)
			}
		},
	}
}

var (
	_ = register(mcfKernel("mcf", 3000, 311))
	_ = register(mcfKernel("mcf429", 5000, 313))
)

// vpr: placement cost evaluation — bounding-box updates with min/max
// branches over randomly placed nets.
var _ = register(&Workload{
	Name: "vpr", Suite: "SPECint", Category: Irregular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const nets, pins = 512, 6
		b := prog.NewBuilder("vpr")
		net, pin, t := isa.R(1), isa.R(2), isa.R(3)
		x, minx, maxx, pP := isa.R(4), isa.R(5), isa.R(6), isa.R(7)
		rN, rP := isa.R(10), isa.R(11)
		cost := isa.R(8)
		b.MovI(net, 0)
		b.MovI(cost, 0)
		b.Label("nets")
		b.MovI(minx, 1<<20)
		b.MovI(maxx, 0)
		b.Mul(t, net, rP)
		b.ShlI(t, t, 3)
		b.AddI(pP, t, baseA)
		b.MovI(pin, 0)
		b.Label("pins")
		b.Ld(x, pP, 0)
		b.Slt(t, x, minx)
		b.Beq(t, isa.RZ, "nomin")
		b.Mov(minx, x)
		b.Label("nomin")
		b.Slt(t, maxx, x)
		b.Beq(t, isa.RZ, "nomax")
		b.Mov(maxx, x)
		b.Label("nomax")
		b.AddI(pP, pP, 8)
		b.AddI(pin, pin, 1)
		b.Blt(pin, rP, "pins")
		b.Sub(t, maxx, minx)
		b.Add(cost, cost, t)
		b.AddI(net, net, 1)
		b.Blt(net, rN, "nets")
		b.St(cost, isa.RZ, baseC)
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rN, nets)
			st.SetInt(rP, pins)
			fillI(st, baseA, nets*pins, 1<<16, 321)
		}
	},
})

// parser: dictionary lookup over linked lists — pointer chasing with
// string-compare-style inner loops (link-grammar flavored).
var _ = register(&Workload{
	Name: "parser", Suite: "SPECint", Category: Irregular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const words, buckets = 1024, 256
		b := prog.NewBuilder("parser")
		w, key, h, node, nk, t := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
		rW, rMask := isa.R(10), isa.R(11)
		b.MovI(w, 0)
		b.Label("words")
		b.ShlI(t, w, 3)
		b.AddI(t, t, baseA)
		b.Ld(key, t, 0)
		b.And(h, key, rMask)
		b.ShlI(h, h, 3)
		b.AddI(h, h, baseB)
		b.Ld(node, h, 0)
		b.Label("walk")
		b.Beq(node, isa.RZ, "notfound")
		b.Ld(nk, node, 0)
		b.Beq(nk, key, "found")
		b.Ld(node, node, 8)
		b.Jmp("walk")
		b.Label("found")
		b.Ld(t, node, 16)
		b.AddI(t, t, 1)
		b.St(t, node, 16) // usage count
		b.Label("notfound")
		b.AddI(w, w, 1)
		b.Blt(w, rW, "words")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rW, words)
			st.SetInt(rMask, buckets-1)
			r := newRng(331)
			next := uint64(baseC)
			for k := 0; k < buckets*3; k++ {
				key := r.i64(1 << 16)
				h := uint64(key) & (buckets - 1)
				headAddr := uint64(baseB) + h*8
				prev := st.Mem.LoadInt(headAddr)
				st.Mem.StoreInt(next, key)
				st.Mem.StoreInt(next+8, prev)
				st.Mem.StoreInt(headAddr, int64(next))
				next += 24
			}
			for i := 0; i < words; i++ {
				st.Mem.StoreInt(baseA+uint64(i)*8, r.i64(1<<16))
			}
		}
	},
})

// bzip2: move-to-front coding — a search loop with data-dependent trip
// count followed by a shift loop (mixed short hot traces).
func bzip2Kernel(name string, symbols int64, alphabet int64) *Workload {
	return &Workload{
		Name: name, Suite: "SPECint", Category: Irregular,
		Build: func() (*prog.Program, func(*sim.State)) {
			b := prog.NewBuilder(name)
			s, sym, pos, t, v := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
			pM := isa.R(6)
			rS := isa.R(10)
			b.MovI(s, 0)
			b.Label("symbols")
			b.ShlI(t, s, 3)
			b.AddI(t, t, baseA)
			b.Ld(sym, t, 0)
			// Find position of sym in MTF list.
			b.MovI(pos, 0)
			b.MovI(pM, baseB)
			b.Label("find")
			b.Ld(v, pM, 0)
			b.Beq(v, sym, "shift")
			b.AddI(pM, pM, 8)
			b.AddI(pos, pos, 1)
			b.Jmp("find")
			b.Label("shift")
			// Shift entries [0,pos) up by one (carried memory dependence).
			b.Label("shiftloop")
			b.Beq(pos, isa.RZ, "front")
			b.Ld(v, pM, -8)
			b.St(v, pM, 0)
			b.SubI(pM, pM, 8)
			b.SubI(pos, pos, 1)
			b.Jmp("shiftloop")
			b.Label("front")
			b.St(sym, pM, 0)
			b.ShlI(t, s, 3)
			b.AddI(t, t, baseC)
			b.St(pos, t, 0)
			b.AddI(s, s, 1)
			b.Blt(s, rS, "symbols")
			return b.MustBuild(), func(st *sim.State) {
				st.SetInt(rS, symbols)
				r := newRng(341)
				for i := int64(0); i < alphabet; i++ {
					st.Mem.StoreInt(baseB+uint64(i)*8, i)
				}
				// Zipf-ish symbol stream: small symbols dominate.
				for i := int64(0); i < symbols; i++ {
					v := r.i64(alphabet)
					if r.i64(4) != 0 {
						v = r.i64(4)
					}
					st.Mem.StoreInt(baseA+uint64(i)*8, v)
				}
			}
		},
	}
}

var (
	_ = register(bzip2Kernel("bzip2", 1024, 32))
	_ = register(bzip2Kernel("bzip2-401", 1536, 48))
)

// gcc: dataflow-analysis sweep — bitset unions over a CFG worklist:
// short loops, moderate branching, pointer-indexed block data.
var _ = register(&Workload{
	Name: "gcc", Suite: "SPECint", Category: Irregular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const bbs, words = 256, 4
		b := prog.NewBuilder("gcc")
		pass, bb, wd, t, acc, v := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6)
		pIn, pOut, succ := isa.R(7), isa.R(8), isa.R(9)
		rB, rW := isa.R(10), isa.R(11)
		b.MovI(pass, 0)
		b.Label("passes")
		b.MovI(bb, 0)
		b.Label("bbs")
		// successor index (irregular)
		b.ShlI(t, bb, 3)
		b.AddI(t, t, baseC)
		b.Ld(succ, t, 0)
		b.Mul(pIn, succ, rW)
		b.ShlI(pIn, pIn, 3)
		b.AddI(pIn, pIn, baseA)
		b.Mul(pOut, bb, rW)
		b.ShlI(pOut, pOut, 3)
		b.AddI(pOut, pOut, baseB)
		b.MovI(wd, 0)
		b.MovI(acc, 0)
		b.Label("words")
		b.Ld(v, pIn, 0)
		b.Ld(t, pOut, 0)
		b.Or(v, v, t)
		b.St(v, pOut, 0)
		b.Or(acc, acc, v)
		b.AddI(pIn, pIn, 8)
		b.AddI(pOut, pOut, 8)
		b.AddI(wd, wd, 1)
		b.Blt(wd, rW, "words")
		// Converged-block check (data dependent).
		b.Beq(acc, isa.RZ, "skip")
		b.AddI(isa.R(14), isa.R(14), 1)
		b.Label("skip")
		b.AddI(bb, bb, 1)
		b.Blt(bb, rB, "bbs")
		b.AddI(pass, pass, 1)
		b.SltI(t, pass, 12)
		b.Bne(t, isa.RZ, "passes")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rB, bbs)
			st.SetInt(rW, words)
			fillI(st, baseA, bbs*words, 1<<30, 351)
			fillI(st, baseC, bbs, bbs, 352)
		}
	},
})

// sjeng: board-scan move generation — nested scans with many pattern
// branches of mixed bias.
var _ = register(&Workload{
	Name: "sjeng", Suite: "SPECint", Category: Irregular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const plies, squares = 96, 64
		b := prog.NewBuilder("sjeng")
		ply, sq, t, piece, moves := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
		pB := isa.R(6)
		rP, rS := isa.R(10), isa.R(11)
		b.MovI(ply, 0)
		b.Label("plies")
		b.MovI(moves, 0)
		b.MovI(sq, 0)
		b.MovI(pB, baseA)
		b.Label("squares")
		b.Ld(piece, pB, 0)
		b.Beq(piece, isa.RZ, "empty") // ~half empty
		b.SltI(t, piece, 3)
		b.Bne(t, isa.RZ, "pawn")
		// Sliding piece: scan a ray (short inner loop).
		b.MovI(t, 0)
		b.Label("ray")
		b.AddI(moves, moves, 1)
		b.AddI(t, t, 1)
		b.SltI(isa.R(7), t, 4)
		b.Bne(isa.R(7), isa.RZ, "ray")
		b.Jmp("empty")
		b.Label("pawn")
		b.AddI(moves, moves, 1)
		b.Label("empty")
		b.AddI(pB, pB, 8)
		b.AddI(sq, sq, 1)
		b.Blt(sq, rS, "squares")
		b.ShlI(t, ply, 3)
		b.AddI(t, t, baseC)
		b.St(moves, t, 0)
		b.AddI(ply, ply, 1)
		b.Blt(ply, rP, "plies")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rP, plies)
			st.SetInt(rS, squares)
			fillI(st, baseA, squares, 6, 361)
		}
	},
})

// astar: grid pathfinding relaxation — neighbor expansion with bounds
// checks and a compare-update; array-of-struct accesses.
var _ = register(&Workload{
	Name: "astar", Suite: "SPECint", Category: Irregular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const iterations, width = 48, 64
		b := prog.NewBuilder("astar")
		it, cell, t, g, ng := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
		pG, nb := isa.R(6), isa.R(7)
		rI, rC := isa.R(10), isa.R(11)
		b.MovI(it, 0)
		b.Label("iters")
		b.MovI(cell, 1)
		b.Label("cells")
		b.ShlI(pG, cell, 3)
		b.AddI(pG, pG, baseA)
		b.Ld(g, pG, 0)
		// left neighbor relax
		b.Ld(nb, pG, -8)
		b.AddI(ng, nb, 1)
		b.Slt(t, ng, g)
		b.Beq(t, isa.RZ, "noleft")
		b.Mov(g, ng)
		b.St(g, pG, 0)
		b.Label("noleft")
		// up neighbor relax
		b.Ld(nb, pG, -width*8)
		b.AddI(ng, nb, 1)
		b.Slt(t, ng, g)
		b.Beq(t, isa.RZ, "noup")
		b.Mov(g, ng)
		b.St(g, pG, 0)
		b.Label("noup")
		b.AddI(cell, cell, 1)
		b.Blt(cell, rC, "cells")
		b.AddI(it, it, 1)
		b.Blt(it, rI, "iters")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rI, iterations)
			st.SetInt(rC, width*24)
			fillI(st, baseA-width*8, width*25+width, 10000, 371)
		}
	},
})

// hmmer: Viterbi inner loop — per-cell max-of-three plus emission, with
// a carried dependence on the previous row only (the inner loop is
// vectorizable in real hmmer and here too).
var _ = register(&Workload{
	Name: "hmmer", Suite: "SPECint", Category: Irregular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const seqlen, states = 48, 64
		b := prog.NewBuilder("hmmer")
		i, k, t := isa.R(1), isa.R(2), isa.R(3)
		m, ins, del, e := isa.R(4), isa.R(5), isa.R(6), isa.R(7)
		pPrev, pCur, pE := isa.R(8), isa.R(9), isa.R(14)
		rL, rS := isa.R(10), isa.R(11)
		b.MovI(i, 1)
		b.Label("seq")
		b.Mul(t, i, rS)
		b.ShlI(t, t, 3)
		b.AddI(pCur, t, baseA)
		b.SubI(pPrev, pCur, states*8)
		b.MovI(pE, baseB)
		b.MovI(k, 1)
		b.AddI(pCur, pCur, 8)
		b.Label("states")
		b.Ld(m, pPrev, 0)   // match score diag
		b.Ld(ins, pPrev, 8) // insert score up
		b.Ld(del, pCur, -8) // delete score left (carried in row)
		b.Slt(t, m, ins)
		b.Beq(t, isa.RZ, "m_ok")
		b.Mov(m, ins)
		b.Label("m_ok")
		b.Slt(t, m, del)
		b.Beq(t, isa.RZ, "d_ok")
		b.Mov(m, del)
		b.Label("d_ok")
		b.Ld(e, pE, 0)
		b.Add(m, m, e)
		b.St(m, pCur, 0)
		b.AddI(pPrev, pPrev, 8)
		b.AddI(pCur, pCur, 8)
		b.AddI(pE, pE, 8)
		b.AddI(k, k, 1)
		b.Blt(k, rS, "states")
		b.AddI(i, i, 1)
		b.Blt(i, rL, "seq")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rL, seqlen)
			st.SetInt(rS, states)
			fillI(st, baseA, states, 50, 381)
			fillI(st, baseB, states, 20, 382)
		}
	},
})

// gobmk: pattern matching on a board — nested neighborhood checks with
// early exits; branch-dominated.
var _ = register(&Workload{
	Name: "gobmk", Suite: "SPECint", Category: Irregular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const positions, patterns = 256, 12
		b := prog.NewBuilder("gobmk")
		pos, pat, t, v, pv := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
		pB, pP, matched := isa.R(6), isa.R(7), isa.R(8)
		rPos, rPat := isa.R(10), isa.R(11)
		b.MovI(pos, 0)
		b.MovI(matched, 0)
		b.Label("positions")
		b.MovI(pat, 0)
		b.Label("patterns")
		// Check 4 neighborhood cells against the pattern; exit on first
		// mismatch (common).
		b.ShlI(t, pos, 3)
		b.AddI(pB, t, baseA)
		b.ShlI(t, pat, 5)
		b.AddI(pP, t, baseB)
		b.MovI(t, 0)
		b.Label("cells")
		b.Ld(v, pB, 0)
		b.Ld(pv, pP, 0)
		b.Bne(v, pv, "nomatch")
		b.AddI(pB, pB, 8)
		b.AddI(pP, pP, 8)
		b.AddI(t, t, 1)
		b.SltI(isa.R(9), t, 4)
		b.Bne(isa.R(9), isa.RZ, "cells")
		b.AddI(matched, matched, 1)
		b.Label("nomatch")
		b.AddI(pat, pat, 1)
		b.Blt(pat, rPat, "patterns")
		b.AddI(pos, pos, 1)
		b.Blt(pos, rPos, "positions")
		b.St(matched, isa.RZ, baseC)
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rPos, positions)
			st.SetInt(rPat, patterns)
			fillI(st, baseA, positions+8, 3, 391)
			fillI(st, baseB, patterns*4, 3, 392)
		}
	},
})

// h264ref: mixed interpolation (dense) + SATD-like transform (dense int)
// + mode-decision branches: multiple behaviors in one app.
var _ = register(&Workload{
	Name: "h264ref", Suite: "SPECint", Category: Irregular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const mbs = 48
		b := prog.NewBuilder("h264ref")
		mb, i, t, acc, v := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
		pS, pD := isa.R(6), isa.R(7)
		rMB, rN := isa.R(10), isa.R(11)
		b.MovI(mb, 0)
		b.Label("mbs")
		// Interpolation (dense, vectorizable).
		b.ShlI(t, mb, 7)
		b.AddI(pS, t, baseA)
		b.AddI(pD, t, baseB)
		b.MovI(i, 0)
		b.Label("interp")
		b.Ld(isa.R(8), pS, 0)
		b.Ld(isa.R(9), pS, 8)
		b.Add(v, isa.R(8), isa.R(9))
		b.ShrI(v, v, 1)
		b.St(v, pD, 0)
		b.AddI(pS, pS, 8)
		b.AddI(pD, pD, 8)
		b.AddI(i, i, 1)
		b.Blt(i, rN, "interp")
		// SATD-ish cost (dense int reduce with abs branches).
		b.ShlI(t, mb, 7)
		b.AddI(pS, t, baseB)
		b.MovI(acc, 0)
		b.MovI(i, 0)
		b.Label("satd")
		b.Ld(isa.R(8), pS, 0)
		b.Ld(isa.R(9), pS, 8)
		b.Sub(v, isa.R(8), isa.R(9))
		// Branchless abs (mask idiom).
		b.Slt(t, v, isa.RZ)
		b.Sub(isa.R(12), isa.RZ, t)
		b.Xor(v, v, isa.R(12))
		b.Add(v, v, t)
		b.Add(acc, acc, v)
		b.AddI(pS, pS, 16)
		b.AddI(i, i, 1)
		b.SltI(t, i, 8)
		b.Bne(t, isa.RZ, "satd")
		// Mode decision (data-dependent).
		b.SltI(t, acc, 200)
		b.Beq(t, isa.RZ, "inter")
		b.AddI(isa.R(14), isa.R(14), 1)
		b.Jmp("next_mb")
		b.Label("inter")
		b.AddI(isa.R(15), isa.R(15), 1)
		b.Label("next_mb")
		b.AddI(mb, mb, 1)
		b.Blt(mb, rMB, "mbs")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rMB, mbs)
			st.SetInt(rN, 16)
			fillI(st, baseA, mbs*16+8, 255, 401)
		}
	},
})

// gzip is the SPECint streaming exemplar: irregular control with
// data-dependent branches — the hardest case for chunked bpred identity.
var _ = exemplar("gzip")
