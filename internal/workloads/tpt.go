package workloads

import (
	"exocore/internal/isa"
	"exocore/internal/prog"
	"exocore/internal/sim"
)

// conv: 1-D convolution with a fully-unrolled 6-tap filter — one
// point-parallel loop over contiguous data (the form a vectorizing
// compiler produces), the canonical DLP kernel.
var _ = register(&Workload{
	Name: "conv", Suite: "TPT", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const n, taps = 2048, 6
		b := prog.NewBuilder("conv")
		i, pA, t := isa.R(1), isa.R(3), isa.R(5)
		rN := isa.R(10)
		b.MovI(i, 0)
		b.MovI(pA, baseA)
		b.Label("out")
		b.FMovI(isa.F(1), 0)
		for k := 0; k < taps; k++ {
			b.LdF(isa.F(2), pA, int64(k*8))
			b.FMul(isa.F(3), isa.F(2), isa.F(10+k)) // weights in registers
			b.FAdd(isa.F(1), isa.F(1), isa.F(3))
		}
		b.ShlI(t, i, 3)
		b.AddI(t, t, baseC)
		b.StF(isa.F(1), t, 0)
		b.AddI(pA, pA, 8)
		b.AddI(i, i, 1)
		b.Blt(i, rN, "out")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rN, n)
			for k := 0; k < taps; k++ {
				st.SetFp(isa.F(10+k), 0.1*float64(k+1))
			}
			fillF(st, baseA, n+taps, 11)
		}
	},
})

// merge: the merge step over two sorted runs — a data-dependent 50/50
// branch steers conditionally-incremented cursors, so iterations carry
// register dependences: not vectorizable, control on the critical path.
var _ = register(&Workload{
	Name: "merge", Suite: "TPT", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const n = 2048
		b := prog.NewBuilder("merge")
		pA, pB, pOut := isa.R(1), isa.R(2), isa.R(3)
		endA, endB, t := isa.R(4), isa.R(5), isa.R(6)
		b.MovI(pA, baseA)
		b.MovI(pB, baseB)
		b.MovI(pOut, baseC)
		b.Label("merge")
		b.Ld(isa.R(7), pA, 0)
		b.Ld(isa.R(8), pB, 0)
		b.Slt(t, isa.R(7), isa.R(8))
		b.Beq(t, isa.RZ, "takeB")
		b.St(isa.R(7), pOut, 0)
		b.AddI(pA, pA, 8)
		b.Jmp("next")
		b.Label("takeB")
		b.St(isa.R(8), pOut, 0)
		b.AddI(pB, pB, 8)
		b.Label("next")
		b.AddI(pOut, pOut, 8)
		b.Slt(t, pA, endA)
		b.Beq(t, isa.RZ, "done")
		b.Slt(t, pB, endB)
		b.Bne(t, isa.RZ, "merge")
		b.Label("done")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(endA, baseA+n*8)
			st.SetInt(endB, baseB+n*8)
			// Sorted runs with interleaved values.
			r := newRng(21)
			v1, v2 := int64(0), int64(1)
			for i := 0; i < n; i++ {
				v1 += r.i64(7) + 1
				v2 += r.i64(7) + 1
				st.Mem.StoreInt(baseA+uint64(i)*8, v1)
				st.Mem.StoreInt(baseB+uint64(i)*8, v2)
			}
		}
	},
})

// nbody: all-pairs gravity (SoA layout) — ~20 FP ops per 3 contiguous
// loads: heavy separable computation, the DP-CGRA sweet spot.
var _ = register(&Workload{
	Name: "nbody", Suite: "TPT", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const bodies = 160
		b := prog.NewBuilder("nbody")
		i, j, t := isa.R(1), isa.R(2), isa.R(3)
		pX, pY, pZ := isa.R(4), isa.R(5), isa.R(6)
		rN := isa.R(10)
		xi, yi, zi := isa.F(10), isa.F(11), isa.F(12)
		fx, fy, fz := isa.F(13), isa.F(14), isa.F(15)
		eps := isa.F(16)
		b.MovI(i, 0)
		b.Label("bodies_i")
		b.ShlI(t, i, 3)
		b.AddI(t, t, baseA)
		b.LdF(xi, t, 0)
		b.ShlI(t, i, 3)
		b.AddI(t, t, baseB)
		b.LdF(yi, t, 0)
		b.ShlI(t, i, 3)
		b.AddI(t, t, baseC)
		b.LdF(zi, t, 0)
		b.FMovI(fx, 0).FMovI(fy, 0).FMovI(fz, 0)
		b.MovI(j, 0)
		b.MovI(pX, baseA)
		b.MovI(pY, baseB)
		b.MovI(pZ, baseC)
		b.Label("bodies_j")
		b.LdF(isa.F(1), pX, 0)
		b.LdF(isa.F(2), pY, 0)
		b.LdF(isa.F(3), pZ, 0)
		b.FSub(isa.F(4), isa.F(1), xi) // dx
		b.FSub(isa.F(5), isa.F(2), yi) // dy
		b.FSub(isa.F(6), isa.F(3), zi) // dz
		b.FMul(isa.F(7), isa.F(4), isa.F(4))
		b.FMul(isa.F(8), isa.F(5), isa.F(5))
		b.FMul(isa.F(9), isa.F(6), isa.F(6))
		b.FAdd(isa.F(7), isa.F(7), isa.F(8))
		b.FAdd(isa.F(7), isa.F(7), isa.F(9))
		b.FAdd(isa.F(7), isa.F(7), eps) // dist² + ε
		b.FDiv(isa.F(8), isa.F(17), isa.F(7))
		b.FMul(isa.F(9), isa.F(8), isa.F(8)) // ~1/d³ surrogate
		b.FMul(isa.F(4), isa.F(4), isa.F(9))
		b.FMul(isa.F(5), isa.F(5), isa.F(9))
		b.FMul(isa.F(6), isa.F(6), isa.F(9))
		b.FAdd(fx, fx, isa.F(4))
		b.FAdd(fy, fy, isa.F(5))
		b.FAdd(fz, fz, isa.F(6))
		b.AddI(pX, pX, 8)
		b.AddI(pY, pY, 8)
		b.AddI(pZ, pZ, 8)
		b.AddI(j, j, 1)
		b.Blt(j, rN, "bodies_j")
		b.ShlI(t, i, 3)
		b.AddI(t, t, baseD)
		b.StF(fx, t, 0)
		b.AddI(i, i, 1)
		b.Blt(i, rN, "bodies_i")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rN, bodies)
			st.SetFp(eps, 0.01)
			st.SetFp(isa.F(17), 1.0)
			fillF(st, baseA, bodies, 31)
			fillF(st, baseB, bodies, 32)
			fillF(st, baseC, bodies, 33)
		}
	},
})

// radar: complex FIR (pulse compression style) — interleaved real/
// imaginary arithmetic, 8 FP ops per 4 contiguous loads.
var _ = register(&Workload{
	Name: "radar", Suite: "TPT", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const n, taps = 1024, 16
		b := prog.NewBuilder("radar")
		i, k, pS, pC, t := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
		rN, rT := isa.R(10), isa.R(11)
		b.MovI(i, 0)
		b.Label("pulse")
		b.FMovI(isa.F(1), 0) // acc re
		b.FMovI(isa.F(2), 0) // acc im
		b.ShlI(pS, i, 3)
		b.AddI(pS, pS, baseA)
		b.MovI(pC, baseB)
		b.MovI(k, 0)
		b.Label("tap")
		// SoA complex layout: re[] at baseA, im[] at baseD (the layout
		// vectorizing compilers prefer — contiguous lanes).
		b.LdF(isa.F(3), pS, 0)           // sig re
		b.LdF(isa.F(4), pS, baseD-baseA) // sig im
		b.LdF(isa.F(5), pC, 0)           // coef re
		b.LdF(isa.F(6), pC, baseE-baseB) // coef im
		b.FMul(isa.F(7), isa.F(3), isa.F(5))
		b.FMul(isa.F(8), isa.F(4), isa.F(6))
		b.FSub(isa.F(7), isa.F(7), isa.F(8))
		b.FAdd(isa.F(1), isa.F(1), isa.F(7))
		b.FMul(isa.F(7), isa.F(3), isa.F(6))
		b.FMul(isa.F(8), isa.F(4), isa.F(5))
		b.FAdd(isa.F(7), isa.F(7), isa.F(8))
		b.FAdd(isa.F(2), isa.F(2), isa.F(7))
		b.AddI(pS, pS, 8)
		b.AddI(pC, pC, 8)
		b.AddI(k, k, 1)
		b.Blt(k, rT, "tap")
		b.ShlI(t, i, 4)
		b.AddI(t, t, baseC)
		b.StF(isa.F(1), t, 0)
		b.StF(isa.F(2), t, 8)
		b.AddI(i, i, 1)
		b.Blt(i, rN, "pulse")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rN, n)
			st.SetInt(rT, taps)
			fillF(st, baseA, n+taps, 41)
			fillF(st, baseD, n+taps, 43)
			fillF(st, baseB, taps, 42)
			fillF(st, baseE, taps, 44)
		}
	},
})

// treesearch: batched binary-tree lookups — pointer chasing with
// unpredictable direction branches; memory latency and control dominate.
var _ = register(&Workload{
	Name: "treesearch", Suite: "TPT", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const queries, depth = 1024, 11
		// Node layout: [key, left, right] (3 words, 24 bytes).
		b := prog.NewBuilder("treesearch")
		q, node, key, nk, t := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
		rQ := isa.R(10)
		b.MovI(q, 0)
		b.Label("queries")
		b.ShlI(t, q, 3)
		b.AddI(t, t, baseD)
		b.Ld(key, t, 0) // query key
		b.MovI(node, baseA)
		b.Label("walk")
		b.Ld(nk, node, 0) // node key
		b.Slt(t, key, nk)
		b.Beq(t, isa.RZ, "right")
		b.Ld(node, node, 8) // left child
		b.Jmp("check")
		b.Label("right")
		b.Ld(node, node, 16) // right child
		b.Label("check")
		b.Bne(node, isa.RZ, "walk")
		b.ShlI(t, q, 3)
		b.AddI(t, t, baseE)
		b.St(nk, t, 0)
		b.AddI(q, q, 1)
		b.Blt(q, rQ, "queries")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rQ, queries)
			// Build a complete binary tree of the given depth with keys
			// in BFS order chosen to make comparisons unpredictable.
			r := newRng(51)
			nodes := (1 << depth) - 1
			for i := 0; i < nodes; i++ {
				addr := uint64(baseA + i*24)
				st.Mem.StoreInt(addr, r.i64(1<<30))
				l, rr := 2*i+1, 2*i+2
				if l < nodes {
					st.Mem.StoreInt(addr+8, int64(baseA+l*24))
					st.Mem.StoreInt(addr+16, int64(baseA+rr*24))
				}
			}
			for i := 0; i < queries; i++ {
				st.Mem.StoreInt(baseD+uint64(i)*8, r.i64(1<<30))
			}
		}
	},
})

// vr: volume-rendering ray march — trilinear-style interpolation with a
// highly-biased early-exit opacity test (a hot trace for Trace-P).
var _ = register(&Workload{
	Name: "vr", Suite: "TPT", Category: Regular,
	Build: func() (*prog.Program, func(*sim.State)) {
		const rays, steps = 256, 48
		b := prog.NewBuilder("vr")
		ray, s, pV, t := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		rR, rS := isa.R(10), isa.R(11)
		opaq := isa.F(1)
		b.MovI(ray, 0)
		b.Label("rays")
		b.FMovI(opaq, 0)
		b.MovI(s, 0)
		b.Mul(pV, ray, rS)
		b.ShlI(pV, pV, 3)
		b.AddI(pV, pV, baseA)
		b.Label("march")
		b.LdF(isa.F(2), pV, 0)
		b.LdF(isa.F(3), pV, 8)
		b.FMul(isa.F(4), isa.F(2), isa.F(10))
		b.FMul(isa.F(5), isa.F(3), isa.F(11))
		b.FAdd(isa.F(4), isa.F(4), isa.F(5))
		b.FMul(isa.F(6), isa.F(4), isa.F(12))
		b.FAdd(opaq, opaq, isa.F(6))
		// Early exit once opaque — rare until the ray end (biased branch).
		b.FSlt(t, isa.F(13), opaq)
		b.Bne(t, isa.RZ, "rayend")
		b.AddI(pV, pV, 8)
		b.AddI(s, s, 1)
		b.Blt(s, rS, "march")
		b.Label("rayend")
		b.ShlI(t, ray, 3)
		b.AddI(t, t, baseC)
		b.StF(opaq, t, 0)
		b.AddI(ray, ray, 1)
		b.Blt(ray, rR, "rays")
		return b.MustBuild(), func(st *sim.State) {
			st.SetInt(rR, rays)
			st.SetInt(rS, steps)
			st.SetFp(isa.F(10), 0.4)
			st.SetFp(isa.F(11), 0.6)
			st.SetFp(isa.F(12), 0.02)
			st.SetFp(isa.F(13), 0.95) // opacity threshold
			fillF(st, baseA, rays*steps+steps, 61)
		}
	},
})

// conv is the TPT family's streaming exemplar: a dense unit-stride DLP
// kernel whose repeated execution is exactly its steady state.
var _ = exemplar("conv")
