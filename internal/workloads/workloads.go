// Package workloads provides the ~46 synthetic benchmark kernels standing
// in for the paper's suites (Table 3): TPT and Parboil (regular),
// Mediabench, TPCH and SPECfp (semi-regular), SPECint (irregular). Each
// kernel is written to exhibit the *program behaviors* (Figure 6) of its
// original — data parallelism, memory/compute separability, control
// criticality and bias — so the BSA analyzers and transforms exercise the
// same code paths they would on the real binaries (see DESIGN.md
// substitutions).
package workloads

import (
	"fmt"
	"sort"

	"exocore/internal/bpred"
	"exocore/internal/cache"
	"exocore/internal/prog"
	"exocore/internal/sim"
	"exocore/internal/trace"
)

// Category classifies workloads as the paper's Figure 11 does.
type Category string

// Workload categories.
const (
	Regular     Category = "regular"      // TPT, Parboil
	SemiRegular Category = "semi-regular" // Mediabench, TPCH, SPECfp
	Irregular   Category = "irregular"    // SPECint
	Graph       Category = "graph"        // graph analytics (CSR traversals)
)

// Categories lists every category in presentation order.
var Categories = []Category{Regular, SemiRegular, Irregular, Graph}

// Workload is one benchmark kernel.
type Workload struct {
	Name     string
	Suite    string
	Category Category
	// Build returns the program and a state-preparation function that
	// initializes memory and seed registers (the "fast-forwarded"
	// pre-region state of the paper's methodology).
	Build func() (*prog.Program, func(*sim.State))
}

var registry []*Workload

// Register adds a workload to the registry and returns it. Built-in
// kernels register themselves from init-time variable initializers;
// external packages may add their own before the first All/ByName call.
// Duplicate names panic: every tool keys traces and results by name.
func Register(w *Workload) *Workload {
	for _, have := range registry {
		if have.Name == w.Name {
			panic(fmt.Sprintf("workloads: duplicate workload name %q", w.Name))
		}
	}
	registry = append(registry, w)
	return w
}

func register(w *Workload) *Workload { return Register(w) }

// All returns every registered workload, ordered by suite then name.
func All() []*Workload {
	out := append([]*Workload(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByCategory returns the workloads in a category.
func ByCategory(c Category) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Category == c {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns the named workload, or an error naming the nearest
// registered workload when the name looks like a typo.
func ByName(name string) (*Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	if near := nearestName(name); near != "" {
		return nil, fmt.Errorf("workloads: unknown workload %q — did you mean %q?", name, near)
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// nearestName returns the registered name closest to name within a
// conservative edit-distance threshold, or "".
func nearestName(name string) string {
	best, bestDist := "", 3
	for _, w := range All() {
		if d := editDistance(name, w.Name); d < bestDist {
			best, bestDist = w.Name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two strings.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Trace builds, functionally executes and annotates the workload with the
// default cache hierarchy and branch predictor, producing the trace the
// TDG is constructed from. maxDyn ≤ 0 selects the default budget.
func (w *Workload) Trace(maxDyn int) (*trace.Trace, error) {
	return w.TraceWith(maxDyn, cache.DefaultHierarchy())
}

// TraceWith is Trace with a caller-supplied cache hierarchy (memory-system
// ablations). The hierarchy must be fresh: annotation mutates its state.
func (w *Workload) TraceWith(maxDyn int, h *cache.Hierarchy) (*trace.Trace, error) {
	p, prep := w.Build()
	st := sim.NewState()
	if prep != nil {
		prep(st)
	}
	tr, err := sim.Run(p, st, sim.Config{MaxDyn: maxDyn})
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", w.Name, err)
	}
	h.Annotate(tr)
	bpred.New(bpred.DefaultConfig()).Annotate(tr)
	return tr, nil
}

// rng is a tiny deterministic xorshift generator for kernel input data.
type rng uint64

func newRng(seed uint64) *rng { r := rng(seed*2685821657736338717 + 1); return &r }

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

// i64 returns a pseudo-random integer in [0, n).
func (r *rng) i64(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// f64 returns a pseudo-random float in [0, 1).
func (r *rng) f64() float64 { return float64(r.next()%(1<<52)) / (1 << 52) }
