package workloads

import (
	"testing"

	"exocore/internal/ir"
	"exocore/internal/tdg"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 40 {
		t.Fatalf("only %d workloads registered, paper uses 40+", len(all))
	}
	suites := map[string]int{}
	for _, w := range all {
		suites[w.Suite]++
	}
	for _, s := range []string{"TPT", "Parboil", "SPECfp", "Mediabench", "TPCH", "SPECint"} {
		if suites[s] == 0 {
			t.Errorf("suite %s has no workloads", s)
		}
	}
	if len(ByCategory(Regular)) == 0 || len(ByCategory(SemiRegular)) == 0 || len(ByCategory(Irregular)) == 0 {
		t.Error("every category must be populated")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("mm"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("not-a-workload"); err == nil {
		t.Error("expected error for unknown workload")
	}
}

func TestEveryWorkloadExecutesAndProfiles(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tr, err := w.Trace(40000)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() < 5000 {
				t.Fatalf("trace too short: %d dynamic instructions", tr.Len())
			}
			stats := tr.ComputeStats()
			if stats.Branches == 0 {
				t.Error("no branches — not a loop kernel?")
			}
			td, err := tdg.Build(tr)
			if err != nil {
				t.Fatal(err)
			}
			if len(td.Nest.Loops) == 0 {
				t.Error("no loops recovered")
			}
			// The dominant loop should cover most of the execution.
			ids := td.Prof.SortedLoopsByShare()
			if share := td.Prof.LoopShare(ids[0]); share < 0.5 {
				t.Errorf("hottest loop covers only %.0f%% of execution", share*100)
			}
		})
	}
}

func TestCategoriesHaveExpectedBehaviors(t *testing.T) {
	// Regular workloads should exhibit lower branch misprediction than
	// irregular ones in aggregate.
	missRate := func(c Category) float64 {
		var miss, br int64
		for _, w := range ByCategory(c) {
			tr, err := w.Trace(30000)
			if err != nil {
				t.Fatal(err)
			}
			s := tr.ComputeStats()
			miss += int64(s.Mispredicted)
			br += int64(s.Branches)
		}
		return float64(miss) / float64(br)
	}
	reg, irr := missRate(Regular), missRate(Irregular)
	t.Logf("miss rates: regular=%.3f irregular=%.3f", reg, irr)
	if reg >= irr {
		t.Errorf("regular workloads mispredict more than irregular: %.3f vs %.3f", reg, irr)
	}
}

func TestDeterministicTraces(t *testing.T) {
	w, _ := ByName("mm")
	t1, err := w.Trace(10000)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := w.Trace(10000)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Len() != t2.Len() {
		t.Fatalf("non-deterministic trace length: %d vs %d", t1.Len(), t2.Len())
	}
	for i := range t1.Insts {
		if t1.Insts[i] != t2.Insts[i] {
			t.Fatalf("trace diverges at %d", i)
		}
	}
}

func TestLoopStructureVariety(t *testing.T) {
	// The suite must contain both vectorizable and non-vectorizable
	// dominant loops for the DSE to be meaningful.
	vec, nonvec := 0, 0
	for _, w := range All() {
		tr, err := w.Trace(20000)
		if err != nil {
			t.Fatal(err)
		}
		td, err := tdg.Build(tr)
		if err != nil {
			t.Fatal(err)
		}
		ids := td.Prof.SortedLoopsByShare()
		hot := ids[0]
		// Find the hottest *inner* loop.
		for _, id := range ids {
			if td.Nest.Loops[id].Inner() {
				hot = id
				break
			}
		}
		ld := td.Dataflow(hot)
		if !td.Prof.Loops[hot].CarriedMemDep && len(ld.CarriedRegDep) == 0 {
			vec++
		} else {
			nonvec++
		}
	}
	t.Logf("vectorizable-dominant=%d non-vectorizable-dominant=%d", vec, nonvec)
	if vec < 8 || nonvec < 8 {
		t.Errorf("poor behavior diversity: %d vectorizable vs %d not", vec, nonvec)
	}
	_ = ir.StrideInfo{}
}
