# bench2json.awk — convert `go test -bench` output for the two tracked
# benchmarks into BENCH_2.json, pairing each current measurement with the
# frozen pre-optimization baseline (commit e24e670, same machine class) so
# regressions are visible without re-running the old code.
#
# Usage: go test -bench 'BenchmarkExocoreRun|BenchmarkDSESweep' -benchmem . \
#        | awk -f scripts/bench2json.awk > BENCH_2.json

BEGIN {
    # Pre-change baselines: per-Run µDG rebuild, no arenas, no unit cache.
    base_ns["ExocoreRun"] = 4183315
    base_b["ExocoreRun"] = 11246336
    base_allocs["ExocoreRun"] = 2726
    base_ns["DSESweep"] = 1278732974
    base_b["DSESweep"] = 5131870752
    base_allocs["DSESweep"] = 641708
    order[1] = "ExocoreRun"
    order[2] = "DSESweep"
}

/^Benchmark(ExocoreRun|DSESweep)/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns[name] = $(i - 1)
        if ($i == "B/op") b[name] = $(i - 1)
        if ($i == "allocs/op") allocs[name] = $(i - 1)
    }
}

END {
    printf "{\n  \"schema\": \"exocore-bench/v1\",\n  \"benchmarks\": [\n"
    n = 0
    for (k = 1; k <= 2; k++) {
        name = order[k]
        if (!(name in ns)) continue
        if (n++) printf ",\n"
        printf "    {\n      \"name\": \"%s\",\n", name
        printf "      \"baseline\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f},\n", \
            base_ns[name], base_b[name], base_allocs[name]
        printf "      \"current\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f},\n", \
            ns[name], b[name], allocs[name]
        printf "      \"speedup\": %.2f,\n", base_ns[name] / ns[name]
        printf "      \"allocs_ratio\": %.2f\n    }", base_allocs[name] / allocs[name]
    }
    printf "\n  ]\n}\n"
    if (n != 2) {
        print "bench2json: missing tracked benchmark output" > "/dev/stderr"
        exit 1
    }
}
