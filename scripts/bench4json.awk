# bench4json.awk — convert `go test -bench` output for the three tracked
# benchmarks into BENCH_4.json, pairing each current measurement with its
# frozen pre-delta-evaluation baseline (commit 9a0538e, same machine
# class) so regressions are visible without re-running the old code.
# ContextConstruction is new in this change; its baseline is the same
# code path with delta evaluation disabled (-nodelta: no composer, no
# prefix publication, no cross-core shared pool).
#
# Usage: go test -bench 'BenchmarkExocoreRun|BenchmarkDSESweep|BenchmarkContextConstruction' \
#        -benchmem . | awk -f scripts/bench4json.awk > BENCH_4.json

BEGIN {
    base_ns["ExocoreRun"] = 2487042
    base_b["ExocoreRun"] = 4360090
    base_allocs["ExocoreRun"] = 108
    base_ns["DSESweep"] = 329337073
    base_b["DSESweep"] = 136282250
    base_allocs["DSESweep"] = 81556
    base_ns["ContextConstruction"] = 17110007
    base_b["ContextConstruction"] = 540816
    base_allocs["ContextConstruction"] = 1619
    order[1] = "ExocoreRun"
    order[2] = "DSESweep"
    order[3] = "ContextConstruction"
    ntracked = 3
}

/^Benchmark(ExocoreRun|DSESweep|ContextConstruction)[-\t ]/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns[name] = $(i - 1)
        if ($i == "B/op") b[name] = $(i - 1)
        if ($i == "allocs/op") allocs[name] = $(i - 1)
    }
}

END {
    printf "{\n  \"schema\": \"exocore-bench/v1\",\n  \"benchmarks\": [\n"
    n = 0
    for (k = 1; k <= ntracked; k++) {
        name = order[k]
        if (!(name in ns)) continue
        if (n++) printf ",\n"
        printf "    {\n      \"name\": \"%s\",\n", name
        printf "      \"baseline\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f},\n", \
            base_ns[name], base_b[name], base_allocs[name]
        printf "      \"current\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f},\n", \
            ns[name], b[name], allocs[name]
        printf "      \"speedup\": %.2f,\n", base_ns[name] / ns[name]
        printf "      \"allocs_ratio\": %.2f\n    }", base_allocs[name] / allocs[name]
    }
    printf "\n  ]\n}\n"
    if (n != ntracked) {
        print "bench4json: missing tracked benchmark output" > "/dev/stderr"
        exit 1
    }
}
