# bench7json.awk — convert `go test -bench` output for the four tracked
# benchmarks into BENCH_7.json, pairing each current measurement with its
# frozen pre-data-oriented-µDG baseline (commit e50a287, measured on the
# same machine the same day as the optimized numbers were recorded, so
# the comparison is load-for-load honest). GraphExocoreRun joins the
# tracked set in this round: the SoA graph kernel and lean execution path
# serve the graph workload family through the same engine entry point,
# so it must not regress silently.
#
# Usage: go test -bench 'BenchmarkExocoreRun|BenchmarkGraphExocoreRun|BenchmarkDSESweep|BenchmarkContextConstruction' \
#        -benchmem . | awk -f scripts/bench7json.awk > BENCH_7.json

BEGIN {
    base_ns["ExocoreRun"] = 865702
    base_b["ExocoreRun"] = 84277
    base_allocs["ExocoreRun"] = 68
    base_ns["GraphExocoreRun"] = 1246949
    base_b["GraphExocoreRun"] = 114114
    base_allocs["GraphExocoreRun"] = 48
    base_ns["DSESweep"] = 157593635
    base_b["DSESweep"] = 22038960
    base_allocs["DSESweep"] = 61774
    base_ns["ContextConstruction"] = 12129427
    base_b["ContextConstruction"] = 659362
    base_allocs["ContextConstruction"] = 2265
    order[1] = "ExocoreRun"
    order[2] = "GraphExocoreRun"
    order[3] = "DSESweep"
    order[4] = "ContextConstruction"
    ntracked = 4
}

/^Benchmark(ExocoreRun|GraphExocoreRun|DSESweep|ContextConstruction)[-\t ]/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns[name] = $(i - 1)
        if ($i == "B/op") b[name] = $(i - 1)
        if ($i == "allocs/op") allocs[name] = $(i - 1)
    }
}

END {
    printf "{\n  \"schema\": \"exocore-bench/v1\",\n  \"benchmarks\": [\n"
    n = 0
    for (k = 1; k <= ntracked; k++) {
        name = order[k]
        if (!(name in ns)) continue
        if (n++) printf ",\n"
        printf "    {\n      \"name\": \"%s\",\n", name
        printf "      \"baseline\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f},\n", \
            base_ns[name], base_b[name], base_allocs[name]
        printf "      \"current\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f},\n", \
            ns[name], b[name], allocs[name]
        printf "      \"speedup\": %.2f,\n", base_ns[name] / ns[name]
        printf "      \"allocs_ratio\": %.2f\n    }", base_allocs[name] / allocs[name]
    }
    printf "\n  ]\n}\n"
    if (n != ntracked) {
        print "bench7json: missing tracked benchmark output" > "/dev/stderr"
        exit 1
    }
}
