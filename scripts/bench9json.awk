# bench9json.awk — convert `go test -bench` output for the five tracked
# benchmarks into BENCH_9.json. The four carried benchmarks keep the
# BENCH_7.json "current" values as this round's frozen baselines (same
# machine, re-anchored per the convention BENCH_7 itself followed).
# StreamedExocoreRun joins the tracked set in this round: its frozen
# baseline is the materialized-path equivalent of the same work — trace
# synthesis + tdg.Build + baseline Run at the same budget — measured
# min-of-4 at the commit that introduced streaming, so the speedup
# column reads "streamed pipeline vs what this path cost before".
#
# Usage: go test -bench 'BenchmarkExocoreRun|BenchmarkGraphExocoreRun|BenchmarkStreamedExocoreRun|BenchmarkDSESweep|BenchmarkContextConstruction' \
#        -benchmem . | awk -f scripts/bench9json.awk > BENCH_9.json

BEGIN {
    base_ns["ExocoreRun"] = 486611
    base_b["ExocoreRun"] = 87504
    base_allocs["ExocoreRun"] = 61
    base_ns["GraphExocoreRun"] = 924493
    base_b["GraphExocoreRun"] = 105904
    base_allocs["GraphExocoreRun"] = 47
    base_ns["StreamedExocoreRun"] = 1839562
    base_b["StreamedExocoreRun"] = 1306880
    base_allocs["StreamedExocoreRun"] = 292
    base_ns["DSESweep"] = 104173713
    base_b["DSESweep"] = 24943178
    base_allocs["DSESweep"] = 35971
    base_ns["ContextConstruction"] = 8721232
    base_b["ContextConstruction"] = 768050
    base_allocs["ContextConstruction"] = 1420
    order[1] = "ExocoreRun"
    order[2] = "GraphExocoreRun"
    order[3] = "StreamedExocoreRun"
    order[4] = "DSESweep"
    order[5] = "ContextConstruction"
    ntracked = 5
}

/^Benchmark(ExocoreRun|GraphExocoreRun|StreamedExocoreRun|DSESweep|ContextConstruction)[-\t ]/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns[name] = $(i - 1)
        if ($i == "B/op") b[name] = $(i - 1)
        if ($i == "allocs/op") allocs[name] = $(i - 1)
    }
}

END {
    printf "{\n  \"schema\": \"exocore-bench/v1\",\n  \"benchmarks\": [\n"
    n = 0
    for (k = 1; k <= ntracked; k++) {
        name = order[k]
        if (!(name in ns)) continue
        if (n++) printf ",\n"
        printf "    {\n      \"name\": \"%s\",\n", name
        printf "      \"baseline\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f},\n", \
            base_ns[name], base_b[name], base_allocs[name]
        printf "      \"current\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f},\n", \
            ns[name], b[name], allocs[name]
        printf "      \"speedup\": %.2f,\n", base_ns[name] / ns[name]
        printf "      \"allocs_ratio\": %.2f\n    }", base_allocs[name] / allocs[name]
    }
    printf "\n  ]\n}\n"
    if (n != ntracked) {
        print "bench9json: missing tracked benchmark output" > "/dev/stderr"
        exit 1
    }
}
