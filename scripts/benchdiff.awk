# benchdiff.awk — regression gate for the tracked benchmarks. Compares a
# fresh `go test -bench` run against the recorded current values in
# BENCH_7.json and fails when any benchmark is slower than the recorded
# value by more than the tolerance band. The recorded values are
# min-of-N measurements, so the fresh run must also be min-of-N to
# compare like with like: the Makefile runs each benchmark with
# -count=4 and this script keeps the minimum ns/op per benchmark
# (single-shot runs on this shared single-vCPU machine jitter by
# 15-30%; genuine regressions from the optimizations this file guards
# are far larger and survive the min).
#
# Usage: awk -f scripts/benchdiff.awk BENCH_7.json bench.out

BEGIN {
    tol = 1.25 # fail when min current ns/op > 1.25 × recorded ns/op
}

# --- First file: BENCH_7.json ---
FNR == NR && /"name":/ {
    name = $2
    gsub(/[",]/, "", name)
    next
}
FNR == NR && /"current":/ {
    line = $0
    sub(/.*"ns_per_op": */, "", line)
    sub(/[^0-9].*/, "", line)
    tracked[name] = line + 0
    next
}
FNR == NR { next }

# --- Second file: fresh benchmark output (N lines per benchmark) ---
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (!(name in tracked)) next
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") now = $(i - 1)
    }
    if (!(name in best) || now < best[name]) best[name] = now
}

END {
    for (name in tracked) {
        if (!(name in best)) {
            printf "%-20s tracked but not measured\n", name
            failed++
            continue
        }
        ratio = best[name] / tracked[name]
        status = "ok"
        if (ratio > tol) {
            status = "REGRESSION"
            failed++
        }
        printf "%-20s tracked %12.0f ns/op   min-now %12.0f ns/op   %.2fx  %s\n", \
            name, tracked[name], best[name], ratio, status
    }
    if (failed) {
        printf "benchdiff: %d benchmark(s) outside the %.0f%% tolerance band\n", \
            failed, (tol - 1) * 100 > "/dev/stderr"
        exit 1
    }
    print "benchdiff: all tracked benchmarks within tolerance"
}
