# benchdiff.awk — regression gate for the tracked benchmarks. Compares a
# fresh `go test -bench` run against the recorded current values in
# BENCH_4.json and fails when any benchmark is slower than the recorded
# value by more than the tolerance band (single-shot benchmark runs on a
# shared machine jitter by several percent; genuine regressions from the
# optimizations this file guards are far larger).
#
# Usage: awk -f scripts/benchdiff.awk BENCH_4.json bench.out

BEGIN {
    tol = 1.25 # fail when current ns/op > 1.25 × recorded ns/op
}

# --- First file: BENCH_4.json ---
FNR == NR && /"name":/ {
    name = $2
    gsub(/[",]/, "", name)
    next
}
FNR == NR && /"current":/ {
    line = $0
    sub(/.*"ns_per_op": */, "", line)
    sub(/[^0-9].*/, "", line)
    tracked[name] = line + 0
    next
}
FNR == NR { next }

# --- Second file: fresh benchmark output ---
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (!(name in tracked)) next
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") now = $(i - 1)
    }
    seen[name] = 1
    ratio = now / tracked[name]
    status = "ok"
    if (ratio > tol) {
        status = "REGRESSION"
        failed++
    }
    printf "%-20s tracked %12.0f ns/op   now %12.0f ns/op   %.2fx  %s\n", \
        name, tracked[name], now, ratio, status
}

END {
    for (name in tracked) {
        if (!(name in seen)) {
            printf "%-20s tracked but not measured\n", name
            failed++
        }
    }
    if (failed) {
        printf "benchdiff: %d benchmark(s) outside the %.0f%% tolerance band\n", \
            failed, (tol - 1) * 100 > "/dev/stderr"
        exit 1
    }
    print "benchdiff: all tracked benchmarks within tolerance"
}
