// Command fabricsmoke is the end-to-end gate for the sharded sweep
// fabric: it boots two replica exocored daemons (one backed by a
// persistent -store), a coordinator in front of them, and a reference
// single daemon, then requires
//
//  1. a coordinated sweep to be byte-identical to the single daemon's
//     answer for the same request;
//  2. the same identity to hold when one replica is SIGKILLed in the
//     middle of a sweep (the coordinator must retry/steal the lost
//     shards), with the coordinator's /healthz degrading honestly;
//  3. a replica restarted with the same -store to come up warm: its
//     store occupancy is nonzero at boot, a repeated shard-shaped
//     partial sweep returns the pre-kill bytes, and /metricsz shows
//     nonzero store.hits — the engine answered from the persistent
//     store instead of re-simulating;
//  4. the role/replica flag validation to fail fast with helpful
//     messages (did-you-mean on -role, duplicate/empty -replicas,
//     unwritable -store);
//  5. SIGTERM to drain every surviving process to a clean exit 0.
//
// Usage: go run ./scripts/fabricsmoke <bindir>   (bindir holds exocored)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

const maxDyn = "12000"

// sweepDesigns spans three cores so the grid shards across replicas.
const sweepDesigns = `["IO2","IO2-SD","OOO2","OOO2-S","OOO2-SDN","OOO4-N","OOO4-SD"]`

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: fabricsmoke <bindir>")
		os.Exit(2)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "fabricsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("fabricsmoke: ok")
}

// daemon is one exocored process under test.
type daemon struct {
	name string
	cmd  *exec.Cmd
	addr string
	base string
}

func startDaemon(bin, name string, extra ...string) (*daemon, error) {
	portFile := filepath.Join(os.TempDir(), fmt.Sprintf("exocore-fabricsmoke-%d-%s.addr", os.Getpid(), name))
	os.Remove(portFile)
	args := append([]string{"-portfile", portFile, "-maxdyn", maxDyn}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	addr, err := waitForAddr(portFile, cmd)
	os.Remove(portFile)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &daemon{name: name, cmd: cmd, addr: addr, base: "http://" + addr}, nil
}

func (d *daemon) kill() {
	if d.cmd.ProcessState == nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

// drain sends SIGTERM and requires a clean exit 0.
func (d *daemon) drain() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("%s: signal: %w", d.name, err)
	}
	waited := make(chan error, 1)
	go func() { waited <- d.cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			return fmt.Errorf("%s did not exit 0 after SIGTERM: %w", d.name, err)
		}
		return nil
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		return fmt.Errorf("%s did not exit within 30s of SIGTERM", d.name)
	}
}

func run(bindir string) error {
	bin := filepath.Join(bindir, "exocored")
	storeDir := filepath.Join(os.TempDir(), fmt.Sprintf("exocore-fabricsmoke-%d-store", os.Getpid()))
	defer os.RemoveAll(storeDir)

	// Phase 4 first: flag validation fails fast, before any daemon boots.
	rejectDir := filepath.Join(os.TempDir(), fmt.Sprintf("exocore-fabricsmoke-%d-reject", os.Getpid()))
	defer os.RemoveAll(rejectDir)
	if err := checkFlagValidation(bin, rejectDir); err != nil {
		return err
	}

	// The cast: two replicas (r1 with a persistent store), a coordinator,
	// and the single-daemon reference.
	r1, err := startDaemon(bin, "replica1", "-addr", "127.0.0.1:0", "-role", "replica", "-store", storeDir)
	if err != nil {
		return err
	}
	defer r1.kill()
	r2, err := startDaemon(bin, "replica2", "-addr", "127.0.0.1:0", "-role", "replica")
	if err != nil {
		return err
	}
	defer r2.kill()
	coord, err := startDaemon(bin, "coordinator", "-addr", "127.0.0.1:0",
		"-role", "coordinator", "-replicas", r1.base+","+r2.base)
	if err != nil {
		return err
	}
	defer coord.kill()
	single, err := startDaemon(bin, "single", "-addr", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer single.kill()

	// Phase 1: coordinated sweep == single-daemon sweep, byte for byte.
	sweepReq := `{"bench":"mm,fft","designs":` + sweepDesigns + `,"maxdyn":` + maxDyn + `}`
	fabricBody, err := postJSON(coord.base+"/v1/sweep", sweepReq)
	if err != nil {
		return fmt.Errorf("coordinated sweep: %w", err)
	}
	singleBody, err := postJSON(single.base+"/v1/sweep", sweepReq)
	if err != nil {
		return fmt.Errorf("single-daemon sweep: %w", err)
	}
	if !bytes.Equal(fabricBody, singleBody) {
		return fmt.Errorf("coordinated sweep is not byte-identical to the single daemon\n--- fabric ---\n%.2000s\n--- single ---\n%.2000s", fabricBody, singleBody)
	}
	if err := checkCoordHealth(coord.base, 2, "ok"); err != nil {
		return err
	}

	// Seed r1's store with a shard-shaped partial sweep before the kill:
	// this is the exact unit of work a restarted replica must serve warm.
	shardReq := `{"bench":"mm","designs":["OOO2","OOO2-S","OOO2-SDN"],"partial":true,"maxdyn":` + maxDyn + `}`
	shardBefore, err := postJSON(r1.base+"/v1/sweep", shardReq)
	if err != nil {
		return fmt.Errorf("seed shard on replica1: %w", err)
	}

	// Phase 2: SIGKILL replica2 mid-sweep; the coordinator must finish
	// on the survivor with identical bytes. The amdahl sweep over a
	// fresh benchmark is slow enough that the kill lands mid-flight.
	killReq := `{"bench":"mm,fft,gzip","designs":` + sweepDesigns + `,"sched":"amdahl","maxdyn":` + maxDyn + `}`
	type sweepResult struct {
		body []byte
		err  error
	}
	done := make(chan sweepResult, 1)
	go func() {
		b, err := postJSON(coord.base+"/v1/sweep", killReq)
		done <- sweepResult{b, err}
	}()
	time.Sleep(100 * time.Millisecond)
	r2.cmd.Process.Signal(syscall.SIGKILL)
	r2.cmd.Wait()
	res := <-done
	if res.err != nil {
		return fmt.Errorf("sweep with replica2 killed mid-flight: %w", res.err)
	}
	wantKill, err := postJSON(single.base+"/v1/sweep", killReq)
	if err != nil {
		return fmt.Errorf("single-daemon amdahl sweep: %w", err)
	}
	if !bytes.Equal(res.body, wantKill) {
		return fmt.Errorf("sweep completed after replica kill but diverges from the single daemon")
	}
	if err := checkCoordHealth(coord.base, 1, "degraded"); err != nil {
		return err
	}

	// Phase 3: kill replica1 and restart it on its ORIGINAL address with
	// the same -store; the ring (keyed by URL) is unchanged, and the
	// replica must come up warm.
	r1.cmd.Process.Signal(syscall.SIGKILL)
	r1.cmd.Wait()
	r1b, err := startDaemon(bin, "replica1-restarted", "-addr", r1.addr, "-role", "replica", "-store", storeDir)
	if err != nil {
		return fmt.Errorf("restart replica1 on %s: %w", r1.addr, err)
	}
	defer r1b.kill()
	if entries, err := storeEntries(r1b.base); err != nil {
		return err
	} else if entries == 0 {
		return fmt.Errorf("restarted replica reports an empty store; expected the pre-kill entries")
	}
	shardAfter, err := postJSON(r1b.base+"/v1/sweep", shardReq)
	if err != nil {
		return fmt.Errorf("shard on restarted replica: %w", err)
	}
	if !bytes.Equal(shardBefore, shardAfter) {
		return fmt.Errorf("restarted replica's shard differs from the pre-kill shard")
	}
	hits, err := storeHits(r1b.base)
	if err != nil {
		return err
	}
	if hits == 0 {
		return fmt.Errorf("restarted replica served its first shard with store.hits = 0; the persistent store was not used")
	}
	fmt.Fprintf(os.Stderr, "fabricsmoke: restarted replica served the shard with %d store hits\n", hits)

	// The fabric still answers (degraded to one live replica) and still
	// matches the single daemon.
	fabricAgain, err := postJSON(coord.base+"/v1/sweep", sweepReq)
	if err != nil {
		return fmt.Errorf("coordinated sweep after restart: %w", err)
	}
	if !bytes.Equal(fabricAgain, singleBody) {
		return fmt.Errorf("coordinated sweep after replica restart diverges from the single daemon")
	}

	// Phase 5: everyone left drains cleanly.
	for _, d := range []*daemon{coord, r1b, single} {
		if err := d.drain(); err != nil {
			return err
		}
	}
	return nil
}

// checkFlagValidation requires the misuse cases to exit non-zero with
// a message naming the problem. Each case runs under a timeout: a case
// that validation wrongly accepts would start serving and never exit.
func checkFlagValidation(bin, rejectDir string) error {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"typoed role", []string{"-role", "cordinator"}, `did you mean "coordinator"?`},
		{"coordinator without replicas", []string{"-role", "coordinator"}, "empty replica list"},
		{"duplicate replicas", []string{"-role", "coordinator", "-replicas", "http://a:1,http://a:1"}, "duplicate replica"},
		{"blank replica entry", []string{"-role", "coordinator", "-replicas", "http://a:1,,http://b:1"}, "empty replica entry"},
		{"replicas without coordinator", []string{"-replicas", "http://a:1"}, "only meaningful with -role coordinator"},
		{"store on coordinator", []string{"-role", "coordinator", "-replicas", "http://a:1", "-store", rejectDir}, "coordinator computes nothing"},
		{"unwritable store", []string{"-store", "/proc/exocore-fabricsmoke-unwritable"}, "-store"},
	}
	for _, c := range cases {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		cmd := exec.CommandContext(ctx, bin, append([]string{"-addr", "127.0.0.1:0"}, c.args...)...)
		out, err := cmd.CombinedOutput()
		timedOut := ctx.Err() != nil
		cancel()
		if err == nil || timedOut {
			return fmt.Errorf("flag validation (%s): exocored accepted %v", c.name, c.args)
		}
		if !strings.Contains(string(out), c.want) {
			return fmt.Errorf("flag validation (%s): error output %q does not mention %q", c.name, out, c.want)
		}
	}
	return nil
}

// checkCoordHealth asserts the coordinator's role, status and live
// replica count.
func checkCoordHealth(base string, wantAlive int, wantStatus string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("coordinator healthz: %w", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status   string `json:"status"`
		Role     string `json:"role"`
		Replicas []struct {
			Alive bool `json:"alive"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("coordinator healthz: %w", err)
	}
	if h.Role != "coordinator" {
		return fmt.Errorf("coordinator healthz role = %q", h.Role)
	}
	if h.Status != wantStatus {
		return fmt.Errorf("coordinator healthz status = %q, want %q", h.Status, wantStatus)
	}
	alive := 0
	for _, r := range h.Replicas {
		if r.Alive {
			alive++
		}
	}
	if alive != wantAlive {
		return fmt.Errorf("coordinator healthz reports %d live replicas, want %d", alive, wantAlive)
	}
	return nil
}

// storeEntries reads the store occupancy a replica reports in /healthz.
func storeEntries(base string) (int, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, fmt.Errorf("replica healthz: %w", err)
	}
	defer resp.Body.Close()
	var h struct {
		Store struct {
			Entries int `json:"entries"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, fmt.Errorf("replica healthz: %w", err)
	}
	return h.Store.Entries, nil
}

// storeHits reads the store.hits counter from a replica's /metricsz.
func storeHits(base string) (int64, error) {
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		return 0, fmt.Errorf("metricsz: %w", err)
	}
	defer resp.Body.Close()
	var m struct {
		Points []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, fmt.Errorf("metricsz: %w", err)
	}
	for _, p := range m.Points {
		if p.Name == "store.hits" {
			return p.Value, nil
		}
	}
	return 0, fmt.Errorf("metricsz has no store.hits point")
}

// waitForAddr polls the portfile the daemon writes once listening.
func waitForAddr(portFile string, daemon *exec.Cmd) (string, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(portFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			return string(bytes.TrimSpace(b)), nil
		}
		if daemon.ProcessState != nil {
			return "", fmt.Errorf("exocored exited before listening")
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("exocored did not write %s within 30s", portFile)
}

func postJSON(url, body string) ([]byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return b, nil
}
