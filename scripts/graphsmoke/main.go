// Command graphsmoke validates a `dse -json` document produced over the
// full five-model registry with a graph benchmark: the enlarged
// 4-core × 2^5-subset grid must be fully enumerated, GS-DAE designs
// must appear in it, and the graph benchmark's per-design rows must be
// present. `make check` runs it against a bfs sweep so registry growth
// can never silently stop reaching the exploration grid.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphsmoke: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) != 2 {
		fail("usage: graphsmoke <dse-result.json>")
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Results []struct {
			Design string `json:"design"`
			Bench  string `json:"bench"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fail("malformed document: %v", err)
	}
	if doc.Schema != "exocore-result/v1" {
		fail("schema %q, want exocore-result/v1", doc.Schema)
	}

	designs := map[string]bool{}
	gsdaeDesigns := 0
	benchRows := 0
	for _, r := range doc.Results {
		if !designs[r.Design] {
			designs[r.Design] = true
			if _, letters, ok := strings.Cut(r.Design, "-"); ok && strings.Contains(letters, "G") {
				gsdaeDesigns++
			}
		}
		if r.Bench == "bfs" {
			benchRows++
		}
	}

	// 4 general cores × 2^5 registry subsets.
	const wantDesigns = 4 * 32
	if len(designs) != wantDesigns {
		fail("%d distinct designs, want %d (did the grid stop following the registry?)", len(designs), wantDesigns)
	}
	if gsdaeDesigns != wantDesigns/2 {
		fail("%d GS-DAE designs, want %d", gsdaeDesigns, wantDesigns/2)
	}
	if benchRows != wantDesigns {
		fail("%d bfs rows, want one per design (%d)", benchRows, wantDesigns)
	}
	fmt.Printf("graphsmoke: ok — %d designs, %d with GS-DAE, %d bfs rows\n",
		len(designs), gsdaeDesigns, benchRows)
}
