// memsmoke is the streaming-evaluation memory gate: it evaluates a
// 10M-instruction trace through the baseline engine path and fails if
// the process ever needed more than a fixed memory budget from the OS.
//
// Before the windowed µDG, a trace this size materialized ~50M graph
// nodes (multiple GiB of node arrays); with O(window) streaming the
// graph's high-water mark is a few MiB regardless of trace length, and
// the trace itself dominates the footprint. The Makefile runs this under
// GOMEMLIMIT to also prove the heap target is sustainable, not merely
// reachable between GCs.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"exocore/internal/cores"
	"exocore/internal/exocore"
	"exocore/internal/obs"
	"exocore/internal/tdg"
	"exocore/internal/trace"
	"exocore/internal/workloads"
)

const (
	wantDyn = 10_000_000
	// sysBudget bounds total memory obtained from the OS. The dominant
	// term is the trace itself (16 B/inst = 160 MB); the µDG window,
	// profile, and runtime overheads ride in the remainder.
	sysBudget = 512 << 20
	// graphBudget bounds the µDG high-water mark alone: the streaming
	// window (2^18 nodes) plus compaction slack, nowhere near the
	// O(trace) node count.
	graphBudget = 64 << 20
)

func main() {
	w, err := workloads.ByName("mm")
	if err != nil {
		log.Fatal(err)
	}
	base, err := w.Trace(wantDyn)
	if err != nil {
		log.Fatal(err)
	}
	tr := base
	if base.Len() < wantDyn {
		// The workload's natural run is shorter: tile the dynamic stream
		// (same static program) until it reaches the target length.
		tiled := make([]trace.DynInst, wantDyn)
		for i := 0; i < wantDyn; i += base.Len() {
			copy(tiled[i:], base.Insts)
		}
		tr = &trace.Trace{Prog: base.Prog, Insts: tiled}
	}
	if tr.Len() < wantDyn {
		log.Fatalf("memsmoke: trace has %d insts, want %d", tr.Len(), wantDyn)
	}

	td, err := tdg.Build(tr)
	if err != nil {
		log.Fatal(err)
	}

	reg := obs.NewRegistry()
	res, err := exocore.Run(td, cores.OOO4, nil, nil, nil, exocore.RunOpts{Reg: reg})
	if err != nil {
		log.Fatal(err)
	}
	if res.Cycles <= 0 {
		log.Fatalf("memsmoke: implausible cycles %d", res.Cycles)
	}

	high := reg.Gauge("dg.graph_high_water_bytes").Value()
	if high <= 0 {
		log.Fatal("memsmoke: graph high-water gauge never set")
	}
	if high > graphBudget {
		log.Fatalf("memsmoke: µDG high-water %d B exceeds %d B — windowing is not bounding the graph",
			high, int64(graphBudget))
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.Sys > sysBudget {
		log.Fatalf("memsmoke: %d B obtained from OS exceeds budget %d B", ms.Sys, int64(sysBudget))
	}

	fmt.Fprintf(os.Stdout,
		"memsmoke ok: %d insts, %d cycles, µDG high-water %.1f MiB, sys %.1f MiB (budget %d MiB)\n",
		tr.Len(), res.Cycles, float64(high)/(1<<20), float64(ms.Sys)/(1<<20), sysBudget>>20)
}
