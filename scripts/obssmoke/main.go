// Command obssmoke is the end-to-end gate for the telemetry plane: it
// boots a real exocored with always-on flight-recorder tracing, the
// runtime sampler on a fast interval and pprof enabled, then requires
//
//   - /v1/evaluate to stay byte-identical to tdgsim -json (tracing and
//     sampling must not perturb results),
//   - /metricsz?format=prom to expose a well-formed Prometheus text
//     page with at least 20 distinct series including the go_* runtime
//     metrics and every name on the golden list,
//   - /debug/pprof/goroutine to serve a non-empty profile,
//   - /debug/requests to retain the evaluation's summary, and its
//     /debug/requests/{id}/trace fragment to pass obs.ValidateTrace
//     with at least one span,
//   - SIGTERM to drain cleanly: exit 0.
//
// Usage: go run ./scripts/obssmoke <bindir>
//
// where <bindir> holds exocored and tdgsim binaries (the Makefile
// target builds them). Exits non-zero on the first violation.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"exocore/internal/obs"
	"exocore/internal/report"
)

const maxDyn = "15000"

// goldenSeries are Prometheus series names that must appear in the
// exposition: server counters and latency histogram, engine stage
// instruments, the evaluation cache, ring-tracer retention, and the
// runtime sampler's go_* metrics.
var goldenSeries = []string{
	"serve_requests_total",
	"serve_status_2xx_total",
	"serve_latency_ns_bucket",
	"serve_latency_ns_sum",
	"serve_latency_ns_count",
	"stage_trace_calls_total",
	"stage_tdg_calls_total",
	"stage_eval_wall_ns_sum",
	"evalcache_entries",
	"obs_retained_spans",
	"go_goroutines",
	"go_heap_inuse_bytes",
	"go_mem_total_bytes",
	"go_gc_cycles",
	"go_gc_pause_ns_count",
	"go_sched_latency_ns_bucket",
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: obssmoke <bindir>")
		os.Exit(2)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

func run(bindir string) error {
	portFile := filepath.Join(os.TempDir(), fmt.Sprintf("exocore-obssmoke-%d.addr", os.Getpid()))
	defer os.Remove(portFile)

	daemon := exec.Command(filepath.Join(bindir, "exocored"),
		"-addr", "127.0.0.1:0", "-portfile", portFile, "-maxdyn", maxDyn,
		"-pprof", "-obs-interval", "50ms")
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start exocored: %w", err)
	}
	stopped := false
	defer func() {
		if !stopped {
			daemon.Process.Kill()
			daemon.Wait()
		}
	}()

	addr, err := waitForAddr(portFile, daemon)
	if err != nil {
		return err
	}
	base := "http://" + addr

	// Byte identity under always-on telemetry: the traced, sampled
	// daemon must emit exactly what the untraced CLI emits.
	evalBody, reqID, err := postJSON(base+"/v1/evaluate",
		`{"bench":"mm","core":"OOO2","bsas":"all","sched":"oracle","maxdyn":`+maxDyn+`}`)
	if err != nil {
		return fmt.Errorf("evaluate: %w", err)
	}
	if reqID == "" {
		return fmt.Errorf("evaluate response has no X-Request-Id header")
	}
	cliBody, err := runTool(filepath.Join(bindir, "tdgsim"),
		"-bench", "mm", "-core", "OOO2", "-bsas", "all", "-sched", "oracle",
		"-maxdyn", maxDyn, "-json")
	if err != nil {
		return err
	}
	if err := compareDocs("evaluate vs tdgsim", evalBody, cliBody); err != nil {
		return err
	}

	if err := checkProm(base); err != nil {
		return err
	}
	if err := checkPprof(base); err != nil {
		return err
	}
	if err := checkDebugRequests(base, reqID); err != nil {
		return err
	}

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	stopped = true
	waited := make(chan error, 1)
	go func() { waited <- daemon.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			return fmt.Errorf("exocored did not exit 0 after SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		daemon.Process.Kill()
		return fmt.Errorf("exocored did not exit within 30s of SIGTERM")
	}
	return nil
}

// checkProm scrapes the Prometheus exposition and verifies content
// type, series breadth and the golden names.
func checkProm(base string) error {
	resp, err := http.Get(base + "/metricsz?format=prom")
	if err != nil {
		return fmt.Errorf("metricsz prom: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metricsz prom: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		return fmt.Errorf("metricsz prom: Content-Type %q, want %q", ct, obs.PromContentType)
	}

	series := make(map[string]bool)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name == "" {
			return fmt.Errorf("metricsz prom: malformed sample line %q", line)
		}
		series[name] = true
	}
	if len(series) < 20 {
		return fmt.Errorf("metricsz prom: %d distinct series, want >= 20", len(series))
	}
	for _, want := range goldenSeries {
		if !series[want] {
			return fmt.Errorf("metricsz prom: missing golden series %q (have %d series)", want, len(series))
		}
	}
	return nil
}

// checkPprof fetches a goroutine profile through the -pprof gate.
func checkPprof(base string) error {
	resp, err := http.Get(base + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		return fmt.Errorf("pprof: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		return fmt.Errorf("pprof goroutine: status %d, %d bytes", resp.StatusCode, len(body))
	}
	return nil
}

// checkDebugRequests finds the evaluation in the flight recorder and
// validates its per-request trace fragment.
func checkDebugRequests(base, reqID string) error {
	resp, err := http.Get(base + "/debug/requests")
	if err != nil {
		return fmt.Errorf("debug/requests: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("debug/requests: status %d", resp.StatusCode)
	}
	var dbg struct {
		Recent []struct {
			ID        string `json:"id"`
			Key       string `json:"key"`
			Status    int    `json:"status"`
			LatencyNS int64  `json:"latency_ns"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(body, &dbg); err != nil {
		return fmt.Errorf("debug/requests: %w", err)
	}
	found := false
	for _, rec := range dbg.Recent {
		if rec.ID != reqID {
			continue
		}
		found = true
		if !strings.HasPrefix(rec.Key, "eval|mm|") {
			return fmt.Errorf("debug/requests: record %s key %q, want eval|mm| prefix", reqID, rec.Key)
		}
		if rec.Status != http.StatusOK || rec.LatencyNS <= 0 {
			return fmt.Errorf("debug/requests: record %s status=%d latency=%d", reqID, rec.Status, rec.LatencyNS)
		}
	}
	if !found {
		return fmt.Errorf("debug/requests: evaluation %s not in recent ring", reqID)
	}

	resp, err = http.Get(base + "/debug/requests/" + reqID + "/trace")
	if err != nil {
		return fmt.Errorf("trace fragment: %w", err)
	}
	defer resp.Body.Close()
	frag, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace fragment: status %d: %s", resp.StatusCode, frag)
	}
	n, err := obs.ValidateTrace(frag)
	if err != nil {
		return fmt.Errorf("trace fragment invalid: %w", err)
	}
	if n < 1 {
		return fmt.Errorf("trace fragment has %d spans, want >= 1", n)
	}
	return nil
}

func waitForAddr(portFile string, daemon *exec.Cmd) (string, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(portFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			return string(bytes.TrimSpace(b)), nil
		}
		if daemon.ProcessState != nil {
			return "", fmt.Errorf("exocored exited before listening")
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("exocored did not write %s within 30s", portFile)
}

func postJSON(url, body string) ([]byte, string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return b, resp.Header.Get("X-Request-Id"), nil
}

func runTool(bin string, args ...string) ([]byte, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(bin), err)
	}
	return out, nil
}

// compareDocs decodes both sides under the strict versioned-schema
// decoder, clears the fields that legitimately differ (tool name,
// run-local engine metrics) and requires the re-rendered documents to
// be byte-identical.
func compareDocs(what string, a, b []byte) error {
	na, err := normalize(a)
	if err != nil {
		return fmt.Errorf("%s: left: %w", what, err)
	}
	nb, err := normalize(b)
	if err != nil {
		return fmt.Errorf("%s: right: %w", what, err)
	}
	if !bytes.Equal(na, nb) {
		return fmt.Errorf("%s: documents differ after normalization\n--- daemon ---\n%.2000s\n--- cli ---\n%.2000s", what, na, nb)
	}
	return nil
}

func normalize(raw []byte) ([]byte, error) {
	d, err := report.Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	d.Tool = ""
	d.Metrics = nil
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
