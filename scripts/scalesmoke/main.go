// scalesmoke is the paper-scale streaming gate: it evaluates a
// 200M-instruction generator-driven run — the trace-length regime the
// original paper models, 3.2 GB of DynInst if materialized — through the
// chunked source → pipelined annotation → streaming-TDG → windowed-µDG
// path, and fails if the process ever needed more than 512 MiB from the
// OS. The Makefile runs it under GOMEMLIMIT=512MiB so the heap target is
// enforced for the whole run, not just sampled at the end.
//
// Two budgets are asserted from the instrument plane rather than
// inferred from totals: dg.graph_high_water_bytes (the µDG window must
// stay O(window), as established by memsmoke) and the new
// trace.chunk_high_water_bytes (resident trace buffers must stay at
// pipeline-depth chunks, never O(trace)).
//
// Before the long run, an overlap check replays a smaller budget down
// both arms — materialized Build+Run versus streamed
// Tee+BuildStream+RunStream from an identical generator — and requires
// identical cycles, energy counts, statistics and block profile, so the
// 200M numbers are trusted to mean what the materialized path would have
// said.
package main

import (
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"

	"exocore/internal/cores"
	"exocore/internal/exocore"
	"exocore/internal/obs"
	"exocore/internal/tdg"
	"exocore/internal/trace"
	"exocore/internal/workloads"
)

const (
	wantDyn    = 200_000_000
	overlapDyn = 1_000_000
	// sysBudget bounds total memory obtained from the OS for the whole
	// 200M-instruction run. Nothing scales with trace length: chunks are
	// recycled, the µDG windows, the profile is O(static program).
	sysBudget = 512 << 20
	// graphBudget bounds the µDG high-water mark (window + compaction
	// slack), same bar memsmoke holds the materialized path to.
	graphBudget = 64 << 20
	// chunkBudget bounds resident trace buffers: producer + bounded
	// channel + consumer is a handful of chunks (16 MiB each at the
	// default size), with headroom for pool churn.
	chunkBudget = 8 * trace.DefaultChunkInsts * 16
)

// stream builds the streamed arm for one budget: generator source teed
// into a streaming TDG builder, pipelined behind a producer goroutine,
// evaluated by RunStream.
func stream(w *workloads.Workload, maxDyn, chunkInsts int, reg *obs.Registry) (*exocore.RunResult, *tdg.Stream, error) {
	gen := w.Source(workloads.SourceConfig{MaxDyn: maxDyn, ChunkInsts: chunkInsts, Loop: true})
	sb, err := tdg.NewStreamBuilder(gen.Prog())
	if err != nil {
		return nil, nil, err
	}
	src := trace.NewPipelined(trace.Tee(gen, sb.Feed), 0)
	res, err := exocore.RunStream(src, cores.OOO4, exocore.RunOpts{Reg: reg})
	if err != nil {
		src.Stop()
		return nil, nil, err
	}
	return res, sb.Finish(), nil
}

func main() {
	w, err := workloads.ByName("mm")
	if err != nil {
		log.Fatal(err)
	}

	// Overlap identity: both arms at a size the materialized path can
	// comfortably hold.
	gen := w.Source(workloads.SourceConfig{MaxDyn: overlapDyn, Loop: true})
	tr, err := trace.Materialize(gen, overlapDyn)
	if err != nil {
		log.Fatal(err)
	}
	td, err := tdg.Build(tr)
	if err != nil {
		log.Fatal(err)
	}
	whole, err := exocore.Run(td, cores.OOO4, nil, nil, nil, exocore.RunOpts{})
	if err != nil {
		log.Fatal(err)
	}
	sres, s, err := stream(w, overlapDyn, 1<<16, nil)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case sres.Cycles != whole.Cycles:
		log.Fatalf("scalesmoke: overlap cycles diverge: streamed %d, materialized %d", sres.Cycles, whole.Cycles)
	case sres.Counts != whole.Counts:
		log.Fatal("scalesmoke: overlap energy counts diverge")
	case s.Dyn != tr.Len():
		log.Fatalf("scalesmoke: overlap dyn %d != %d", s.Dyn, tr.Len())
	case s.Stats != tr.ComputeStats():
		log.Fatal("scalesmoke: overlap trace statistics diverge")
	case !reflect.DeepEqual(s.Prof.BlockCount, td.Prof.BlockCount):
		log.Fatal("scalesmoke: overlap block profile diverges")
	}

	// The paper-scale run: 200M instructions, never materialized.
	reg := obs.NewRegistry()
	res, sum, err := stream(w, wantDyn, 0, reg)
	if err != nil {
		log.Fatal(err)
	}
	if sum.Dyn != wantDyn {
		log.Fatalf("scalesmoke: streamed %d insts, want %d", sum.Dyn, wantDyn)
	}
	if res.Cycles <= 0 {
		log.Fatalf("scalesmoke: implausible cycles %d", res.Cycles)
	}

	graphHigh := reg.Gauge("dg.graph_high_water_bytes").Value()
	if graphHigh <= 0 {
		log.Fatal("scalesmoke: graph high-water gauge never set")
	}
	if graphHigh > graphBudget {
		log.Fatalf("scalesmoke: µDG high-water %d B exceeds %d B — windowing is not bounding the graph",
			graphHigh, int64(graphBudget))
	}
	chunkHigh := reg.Gauge("trace.chunk_high_water_bytes").Value()
	if chunkHigh <= 0 {
		log.Fatal("scalesmoke: chunk high-water gauge never set")
	}
	if chunkHigh > chunkBudget {
		log.Fatalf("scalesmoke: chunk high-water %d B exceeds %d B — buffers are not being recycled",
			chunkHigh, int64(chunkBudget))
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.Sys > sysBudget {
		log.Fatalf("scalesmoke: %d B obtained from OS exceeds budget %d B", ms.Sys, int64(sysBudget))
	}

	fmt.Fprintf(os.Stdout,
		"scalesmoke ok: %d insts, %d cycles, µDG high-water %.1f MiB, chunk high-water %.1f MiB, sys %.1f MiB (budget %d MiB)\n",
		sum.Dyn, res.Cycles, float64(graphHigh)/(1<<20), float64(chunkHigh)/(1<<20),
		float64(ms.Sys)/(1<<20), sysBudget>>20)
}
