// Command servesmoke is the end-to-end gate for the evaluation daemon:
// it boots a real exocored on an ephemeral port, queries /healthz,
// /v1/evaluate and /v1/sweep over real HTTP, and requires the response
// documents to be byte-identical to what the cmd/tdgsim and cmd/dse
// binaries emit under -json for the same inputs (after clearing the
// tool header and the run-local metrics attachment, which legitimately
// differ). It then sends SIGTERM and requires a clean drain: exit 0.
//
// Usage: go run ./scripts/servesmoke <bindir>
//
// where <bindir> holds exocored, tdgsim and dse binaries (the Makefile
// target builds them). Exits non-zero on the first violation.
package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"exocore/internal/report"
)

const maxDyn = "15000"

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: servesmoke <bindir>")
		os.Exit(2)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: ok")
}

func run(bindir string) error {
	portFile := filepath.Join(os.TempDir(), fmt.Sprintf("exocore-servesmoke-%d.addr", os.Getpid()))
	defer os.Remove(portFile)

	daemon := exec.Command(filepath.Join(bindir, "exocored"),
		"-addr", "127.0.0.1:0", "-portfile", portFile, "-maxdyn", maxDyn)
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start exocored: %w", err)
	}
	// Always reap the daemon, even on early smoke failure.
	stopped := false
	defer func() {
		if !stopped {
			daemon.Process.Kill()
			daemon.Wait()
		}
	}()

	addr, err := waitForAddr(portFile, daemon)
	if err != nil {
		return err
	}
	base := "http://" + addr

	if err := checkHealthz(base); err != nil {
		return err
	}

	// /v1/evaluate must match tdgsim -json byte for byte.
	evalBody, err := postJSON(base+"/v1/evaluate",
		`{"bench":"mm","core":"OOO2","bsas":"all","sched":"oracle","maxdyn":`+maxDyn+`}`)
	if err != nil {
		return fmt.Errorf("evaluate: %w", err)
	}
	cliBody, err := runTool(filepath.Join(bindir, "tdgsim"),
		"-bench", "mm", "-core", "OOO2", "-bsas", "all", "-sched", "oracle",
		"-maxdyn", maxDyn, "-json")
	if err != nil {
		return err
	}
	if err := compareDocs("evaluate vs tdgsim", evalBody, cliBody); err != nil {
		return err
	}

	// /v1/sweep over the full grid must match dse -json byte for byte.
	sweepBody, err := postJSON(base+"/v1/sweep", `{"bench":"mm","maxdyn":`+maxDyn+`}`)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	dseBody, err := runTool(filepath.Join(bindir, "dse"),
		"-bench", "mm", "-maxdyn", maxDyn, "-json")
	if err != nil {
		return err
	}
	if err := compareDocs("sweep vs dse", sweepBody, dseBody); err != nil {
		return err
	}

	// A repeated query must come back identical from the warm engine.
	again, err := postJSON(base+"/v1/evaluate",
		`{"bench":"mm","core":"OOO2","bsas":"all","sched":"oracle","maxdyn":`+maxDyn+`}`)
	if err != nil {
		return fmt.Errorf("warm evaluate: %w", err)
	}
	if !bytes.Equal(evalBody, again) {
		return fmt.Errorf("warm evaluate differs from the first response")
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	stopped = true
	waited := make(chan error, 1)
	go func() { waited <- daemon.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			return fmt.Errorf("exocored did not exit 0 after SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		daemon.Process.Kill()
		return fmt.Errorf("exocored did not exit within 30s of SIGTERM")
	}
	return nil
}

// waitForAddr polls the portfile the daemon writes once listening.
func waitForAddr(portFile string, daemon *exec.Cmd) (string, error) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(portFile); err == nil && len(bytes.TrimSpace(b)) > 0 {
			return string(bytes.TrimSpace(b)), nil
		}
		if daemon.ProcessState != nil {
			return "", fmt.Errorf("exocored exited before listening")
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("exocored did not write %s within 30s", portFile)
}

func checkHealthz(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"ok"`)) {
		return fmt.Errorf("healthz: status %d body %s", resp.StatusCode, b)
	}
	return nil
}

func postJSON(url, body string) ([]byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return b, nil
}

func runTool(bin string, args ...string) ([]byte, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(bin), err)
	}
	return out, nil
}

// compareDocs decodes both sides under the strict versioned-schema
// decoder, clears the fields that legitimately differ (tool name,
// run-local engine metrics) and requires the re-rendered documents —
// every result row — to be byte-identical.
func compareDocs(what string, a, b []byte) error {
	na, err := normalize(a)
	if err != nil {
		return fmt.Errorf("%s: left: %w", what, err)
	}
	nb, err := normalize(b)
	if err != nil {
		return fmt.Errorf("%s: right: %w", what, err)
	}
	if !bytes.Equal(na, nb) {
		return fmt.Errorf("%s: documents differ after normalization\n--- daemon ---\n%.2000s\n--- cli ---\n%.2000s", what, na, nb)
	}
	return nil
}

func normalize(raw []byte) ([]byte, error) {
	d, err := report.Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	d.Tool = ""
	d.Metrics = nil
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
