// Command tracecheck validates a Chrome trace-event JSON file produced
// by the -trace flag: it must parse as an event array and every span
// must be well-formed and properly nested within its lane. Used by the
// trace-smoke gate in the Makefile; exits non-zero on any violation.
//
// Usage: go run ./scripts/tracecheck <trace.json>
package main

import (
	"fmt"
	"os"

	"exocore/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	spans, err := obs.ValidateTrace(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	if spans == 0 {
		fmt.Fprintln(os.Stderr, "tracecheck: trace has no spans")
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s ok, %d spans\n", os.Args[1], spans)
}
